"""Deterministic signature drift at the KGSL boundary.

The offline phase freezes one signature model per configuration, but the
quantities it classifies are *physical*: counter increments per rendered
frame.  Two real-world processes reshape them over time:

* **thermal throttling** — a hot SoC clocks the GPU down, and busy-cycle
  style counters scale with the clock (DF-SCA builds a whole channel out
  of exactly this state; see PAPERS.md).  Modeled as a multiplicative
  factor ramping (or stepping) from 1.0 down to ``thermal_scale``.
* **popup geometry shift** — an app or keyboard update redraws the key
  popups with different geometry, moving each counter's per-press cost
  by a stable per-counter factor.  Modeled as seeded per-counter factors
  in ``[1 - geometry_shift, 1 + geometry_shift]`` activating at
  ``geometry_onset_s``.

Like :mod:`repro.faults`, a :class:`DriftPlan` is pure configuration
(frozen, serializable); a :class:`DriftInjector` is per-device-file
runtime state.  The injector rewrites the *cumulative* counter values
the timeline serves — it accrues scaled increments on top of the
previously returned value, so counters stay monotone and downstream
deltas shrink or shift exactly as the physical story says.  With no plan
installed the read path is untouched: ``drift=None`` is byte-identical
to a build without this module (golden-parity tested).

Unlike faults, drift is a property of the *device*, not of one fd: the
``time_offset`` argument lets successive sessions continue one thermal
trajectory (the lifecycle runner threads its stream clock through it).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields, replace
from typing import Dict, Mapping, Optional, Tuple, Union

import numpy as np

#: Environment variable selecting the default drift profile; consumed by
#: :func:`drift_plan_from_env` (mirrors ``REPRO_FAULT_PROFILE``).
DRIFT_PROFILE_ENV = "REPRO_DRIFT_PROFILE"

#: Thermal factor curve shapes.
THERMAL_MODES = ("ramp", "step")


@dataclass
class DriftStats:
    """Exact tally of the drift one injector actually applied."""

    #: Counter slots whose returned value was rewritten (factor != 1).
    reads_scaled: int = 0
    #: Slots read while the thermal factor was below 1.0.
    thermal_samples: int = 0
    #: Slots read while the geometry shift was active.
    geometry_samples: int = 0
    #: Most severe thermal factor reached (1.0 = never throttled).
    min_thermal_factor: float = 1.0

    def as_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class DriftPlan:
    """Seeded, deterministic signature-drift configuration.

    The same plan with the same seed always produces the same drifted
    counter stream, which is what makes degraded-then-recovered runs
    reproducible and diffable.
    """

    seed: int = 0
    #: Plateau multiplier the thermal throttle converges to (1.0 = off).
    thermal_scale: float = 1.0
    #: "ramp" interpolates 1.0 → thermal_scale over ``thermal_ramp_s``;
    #: "step" jumps straight to the plateau at onset.
    thermal_mode: str = "ramp"
    #: Device time at which throttling begins.
    thermal_onset_s: float = 0.0
    #: Ramp duration (ignored in "step" mode).
    thermal_ramp_s: float = 8.0
    #: Per-counter geometry factor half-width (0.0 = off); each counter
    #: gets a seeded factor in ``[1 - shift, 1 + shift]``.
    geometry_shift: float = 0.0
    #: Device time at which the shifted geometry takes effect.
    geometry_onset_s: float = 0.0
    #: Informational profile name ("" for hand-built plans).
    profile: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.thermal_scale <= 2.0:
            raise ValueError(
                f"thermal_scale must be in (0, 2], got {self.thermal_scale}"
            )
        if self.thermal_mode not in THERMAL_MODES:
            raise ValueError(
                f"thermal_mode must be one of {THERMAL_MODES}, got {self.thermal_mode!r}"
            )
        if not 0.0 <= self.geometry_shift < 1.0:
            raise ValueError(
                f"geometry_shift must be in [0, 1), got {self.geometry_shift}"
            )
        for name in ("thermal_onset_s", "thermal_ramp_s", "geometry_onset_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def enabled(self) -> bool:
        """Whether this plan can perturb anything at all."""
        return self.thermal_scale != 1.0 or self.geometry_shift > 0.0

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "DriftPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown DriftPlan fields: {sorted(unknown)}")
        return cls(**dict(data))  # type: ignore[arg-type]

    # -- profiles -------------------------------------------------------

    @classmethod
    def from_profile(cls, name: str, seed: int = 0) -> "DriftPlan":
        """One of the named profiles (see :data:`DRIFT_PROFILES`)."""
        try:
            base = DRIFT_PROFILES[name]
        except KeyError:
            raise ValueError(
                f"unknown drift profile {name!r}; available: {sorted(DRIFT_PROFILES)}"
            ) from None
        return replace(base, seed=seed)

    def injector(
        self, seed_offset: int = 0, time_offset: float = 0.0
    ) -> Optional["DriftInjector"]:
        """Build the per-device-file runtime for this plan.

        Returns ``None`` for a plan that cannot drift anything, so the
        KGSL read path stays entirely hook-free when drift is off.
        ``time_offset`` shifts this fd's device clock along the plan's
        drift trajectory — sequential sessions of one long-running device
        pass their stream time so the thermal ramp continues across fds.
        """
        if not self.enabled:
            return None
        return DriftInjector(self, seed_offset=seed_offset, time_offset=time_offset)


#: Named drift profiles (``REPRO_DRIFT_PROFILE`` selects one).
DRIFT_PROFILES: Dict[str, DriftPlan] = {
    "none": DriftPlan(profile="none"),
    # gentle throttle: accuracy dips but mostly survives
    "thermal-mild": DriftPlan(
        thermal_scale=0.85,
        thermal_mode="ramp",
        thermal_onset_s=6.0,
        thermal_ramp_s=10.0,
        profile="thermal-mild",
    ),
    # sustained heavy throttle: the frozen model degrades hard — the
    # lifecycle demo's drift → recalibrate → recover arc runs on this
    "thermal-harsh": DriftPlan(
        thermal_scale=0.55,
        thermal_mode="ramp",
        thermal_onset_s=6.0,
        thermal_ramp_s=10.0,
        profile="thermal-harsh",
    ),
    # an app update reshapes the popups overnight: a step, not a ramp
    "geometry-shift": DriftPlan(
        geometry_shift=0.22,
        geometry_onset_s=6.0,
        profile="geometry-shift",
    ),
    "combined": DriftPlan(
        thermal_scale=0.7,
        thermal_mode="ramp",
        thermal_onset_s=6.0,
        thermal_ramp_s=10.0,
        geometry_shift=0.12,
        geometry_onset_s=6.0,
        profile="combined",
    ),
}


def drift_plan_from_env(default: str = "none") -> Optional[DriftPlan]:
    """The :class:`DriftPlan` selected by ``REPRO_DRIFT_PROFILE``.

    Returns ``None`` when the profile is ``none`` (or unset), so callers
    can use the absence of a plan as "no drift machinery at all".
    """
    name = os.environ.get(DRIFT_PROFILE_ENV, default).strip().lower() or default
    plan = DriftPlan.from_profile(name)
    return plan if plan.enabled else None


def resolve_drift_plan(
    drift: Union["DriftPlan", None, str] = "auto",
) -> Optional[DriftPlan]:
    """Normalize the public ``drift`` argument.

    ``"auto"`` defers to :func:`drift_plan_from_env`; a profile name
    selects that profile; ``None`` disables drift regardless of
    environment; a :class:`DriftPlan` is used as-is (``None`` if it
    cannot drift).
    """
    if drift is None:
        return None
    if isinstance(drift, str):
        if drift == "auto":
            return drift_plan_from_env()
        plan = DriftPlan.from_profile(drift)
        return plan if plan.enabled else None
    return drift if drift.enabled else None


class DriftInjector:
    """Per-device-file drift runtime built from a :class:`DriftPlan`.

    Consulted by :class:`~repro.kgsl.device_file.KgslDeviceFile` on
    every counter slot of every ``PERFCOUNTER_READ``.  The injector
    tracks, per counter, the last raw cumulative value served by the
    timeline and the last value it returned; each new read contributes
    ``round(factor(t) * raw_increment)`` on top of the previous output,
    so returned counters stay cumulative and monotone while their
    *increments* — the deltas the classifier sees — carry the drift.
    """

    def __init__(
        self, plan: DriftPlan, seed_offset: int = 0, time_offset: float = 0.0
    ) -> None:
        self.plan = plan
        self.seed_offset = seed_offset
        self.time_offset = time_offset
        self.stats = DriftStats()
        #: counter key -> (last raw value, last returned value)
        self._state: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._geometry: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------

    def thermal_factor(self, now: float) -> float:
        """The throttle multiplier at device time ``now`` (stream time
        once the injector's ``time_offset`` is added)."""
        plan = self.plan
        if plan.thermal_scale == 1.0:
            return 1.0
        t = now + self.time_offset - plan.thermal_onset_s
        if t < 0.0:
            return 1.0
        if plan.thermal_mode == "step" or plan.thermal_ramp_s <= 0.0:
            return plan.thermal_scale
        frac = min(1.0, t / plan.thermal_ramp_s)
        return 1.0 + (plan.thermal_scale - 1.0) * frac

    def geometry_factor(self, key: Tuple[int, int], now: float) -> float:
        """The per-counter geometry multiplier at device time ``now``.

        Factors are drawn from the *plan* seed and the counter identity
        only, never from the fd's ``seed_offset``: the shifted geometry
        is a property of the updated app, identical across sessions.
        """
        plan = self.plan
        if plan.geometry_shift == 0.0:
            return 1.0
        if now + self.time_offset < plan.geometry_onset_s:
            return 1.0
        factor = self._geometry.get(key)
        if factor is None:
            rng = np.random.default_rng((plan.seed, key[0], key[1]))
            factor = 1.0 + plan.geometry_shift * float(rng.uniform(-1.0, 1.0))
            self._geometry[key] = factor
        return factor

    # -- device-file hook ----------------------------------------------

    def drift_value(self, key: Tuple[int, int], raw: int, now: float) -> int:
        """Rewrite one cumulative counter value read at device time
        ``now``; called per slot from ``PERFCOUNTER_READ``."""
        prev_raw, prev_out = self._state.get(key, (0, 0))
        increment = raw - prev_raw
        if increment < 0:
            # timeline reset (fresh fd reusing an injector): restart the
            # accumulation rather than emit a negative increment
            prev_raw, prev_out, increment = 0, 0, raw
        thermal = self.thermal_factor(now)
        geometry = self.geometry_factor(key, now)
        factor = thermal * geometry
        if factor == 1.0:
            out = prev_out + increment
        else:
            out = prev_out + int(round(increment * factor))
            if increment:
                self.stats.reads_scaled += 1
        if thermal < 1.0:
            self.stats.thermal_samples += 1
            if thermal < self.stats.min_thermal_factor:
                self.stats.min_thermal_factor = thermal
        if geometry != 1.0:
            self.stats.geometry_samples += 1
        self._state[key] = (raw, out)
        return out
