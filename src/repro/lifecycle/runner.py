"""The lifecycle demo: drift degrades, recalibration recovers — one engine.

:func:`run_lifecycle` streams ``segments`` repeated credential entries
through a *single* :class:`~repro.core.online.OnlineEngine` session
while a :class:`~repro.lifecycle.drift.DriftPlan` reshapes the counter
stream underneath it.  The drift injector's ``time_offset`` carries one
thermal trajectory across the per-segment KGSL fds, so the engine
experiences exactly what a long-running attack service would: early
segments classify cleanly, the throttle ramps in, accuracy collapses,
the :class:`~repro.lifecycle.calibration.CalibrationService` trips on
the suspect signals, re-fits the signature, and the engine hot-swaps
the model mid-session (:meth:`OnlineEngine.swap_model`) — after which
accuracy recovers without any session restart.

The report splits segments into three phases for the headline numbers:

* **baseline** — drift not yet active, original model;
* **drifted** — drift active, still on a stale model (inference made
  before any re-fit took effect);
* **recovered** — drift active, classified by a recalibrated model.

``recovery_ratio`` (recovered / baseline exact-credential accuracy) is
the quantity the lifecycle bench pins: ≥ 0.9 with calibration on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Union

import numpy as np

from repro.core.model_store import ModelStore, VersionedModelStore
from repro.core.online import EngineStats, OnlineEngine
from repro.kgsl.device_file import DeviceClock, open_kgsl
from repro.kgsl.sampler import (
    DEFAULT_INTERVAL_S,
    PerfCounterSampler,
    nonzero_deltas_vectorized,
)
from repro.lifecycle.calibration import (
    CalibrationPolicy,
    CalibrationService,
    resolve_calibration,
)
from repro.lifecycle.drift import DriftPlan, DriftStats, resolve_drift_plan
from repro.obs import MetricsRegistry, resolve_registry


@dataclass
class SegmentReport:
    """One credential entry within the lifecycle stream."""

    index: int
    start_s: float
    inferred: str
    exact: bool
    char_accuracy: float
    keys_inferred: int
    noise_events: int
    low_confidence_keys: int
    thermal_factor: float
    drift_active: bool
    recalibrated: bool
    model_version: int

    def as_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class LifecycleReport:
    """Aggregate outcome of one drift → recalibrate → recover run."""

    credential: str
    segments: List[SegmentReport] = field(default_factory=list)
    recalibrations: int = 0
    model_swaps: int = 0
    store_versions: int = 0
    baseline_exact: Optional[float] = None
    drifted_exact: Optional[float] = None
    recovered_exact: Optional[float] = None
    baseline_chars: Optional[float] = None
    drifted_chars: Optional[float] = None
    recovered_chars: Optional[float] = None
    recovery_ratio: Optional[float] = None
    drift: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "segments"
        }
        out["segments"] = [segment.as_dict() for segment in self.segments]
        return out


def _char_accuracy(inferred: str, credential: str) -> float:
    from repro.analysis.metrics import edit_distance

    if not credential:
        return 1.0 if not inferred else 0.0
    return max(0.0, 1.0 - edit_distance(inferred, credential) / len(credential))


def _phase_mean(values: List[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


def run_lifecycle(
    credential: str = "Tr0ub4dor&3",
    segments: int = 6,
    seed: int = 24,
    store: Optional[ModelStore] = None,
    device_config=None,
    target=None,
    drift: Union[DriftPlan, None, str] = "thermal-harsh",
    calibration: Union[CalibrationPolicy, None, str] = "default",
    fault_plan=None,
    speed_tier: Optional[str] = None,
    interval_s: float = DEFAULT_INTERVAL_S,
    segment_gap_s: float = 0.4,
    device_id: str = "device-0",
    metrics: Optional[MetricsRegistry] = None,
    model_dir=None,
    train_seed: int = 7,
) -> LifecycleReport:
    """Stream repeated credential entries through one engine under drift.

    Args:
        credential: the text the victim types, once per segment.
        segments: how many entries the stream spans.
        seed: base RNG seed (segment ``i`` simulates with ``seed + i``).
        store: preloaded model store; trained on the fly when ``None``.
        device_config / target: victim configuration; default Pixel 5 /
            Chase when omitted (and ``store`` is ``None``).
        drift: a :class:`DriftPlan`, a profile name, or ``None``.
        calibration: a :class:`CalibrationPolicy`, a profile name, or
            ``None`` to run the frozen-model control arm.
        fault_plan: optional :class:`~repro.faults.FaultPlan` active
            alongside the drift (the lifecycle-smoke CI arm runs both).
        model_dir: when set, every model generation — the offline
            original and each re-fit — lands in a
            :class:`VersionedModelStore` rooted there, with lineage.
    """
    from repro import faults as faults_mod
    from repro.core.pipeline import simulate_credential_entry, train_store

    if not credential:
        raise ValueError("run_lifecycle() needs a non-empty credential")
    if segments < 1:
        raise ValueError("segments must be >= 1")
    if device_config is None:
        from repro.android.os_config import default_config

        device_config = default_config()
    if target is None:
        from repro.android.apps import app

        target = app("chase")
    if store is None:
        store = train_store([(device_config, target)], seed=train_seed)
    metrics = resolve_registry(metrics)
    drift_plan = resolve_drift_plan(drift)
    policy = resolve_calibration(calibration)
    resolved_faults = faults_mod.resolve_plan(fault_plan)

    versioned: Optional[VersionedModelStore] = None
    if model_dir is not None:
        versioned = VersionedModelStore(model_dir)
        versioned.save(store, lineage={"reason": "offline", "seed": train_seed})

    service: Optional[CalibrationService] = None
    if policy is not None:
        service = CalibrationService(policy, store=versioned, metrics=metrics)

    model = store.get(store.keys()[0])
    engine = OnlineEngine(
        model,
        interval_s=interval_s,
        detect_switches=True,
        # each segment re-enters the credential from an empty field; the
        # correction tracker would read every restart as mass deletion
        track_corrections=False,
        # the ambient-deflation estimator would adopt the *drifted key*
        # direction from the recurring unexplained deltas and project
        # the signal itself out — the lifecycle answer to drift is
        # recalibration, not deflation
        recover_collisions=False,
        metrics=metrics,
        collect_evidence=service is not None,
    )
    live = engine.begin()

    report = LifecycleReport(credential=credential)
    drift_totals = DriftStats()
    cursor = 0.0
    generation = 0  # model generations applied so far (swaps)
    for index in range(segments):
        trace = simulate_credential_entry(
            device_config,
            target,
            credential,
            seed=seed + index,
            speed_tier=speed_tier,
        )
        fault_injector = (
            resolved_faults.injector(seed_offset=seed + index)
            if resolved_faults is not None
            else None
        )
        drift_injector = (
            drift_plan.injector(seed_offset=seed, time_offset=cursor)
            if drift_plan is not None
            else None
        )
        kgsl = open_kgsl(
            trace.timeline,
            clock=DeviceClock(),
            adreno_model=trace.config.gpu.model,
            fault_injector=fault_injector,
            drift_injector=drift_injector,
        )
        sampler = PerfCounterSampler(
            kgsl,
            interval_s=interval_s,
            rng=np.random.default_rng(1000 + seed + index),
            fault_injector=fault_injector,
        )
        samples = sampler.sample_range(0.0, trace.end_time_s)
        deltas = nonzero_deltas_vectorized(samples)
        # the engine lives on one stream clock: shift this segment's
        # device-local timestamps to where the stream currently is
        shifted = [
            replace(delta, t=delta.t + cursor, prev_t=delta.prev_t + cursor)
            for delta in deltas
        ]

        keys_before = len(live.keys)
        stats_before = replace(live.stats)
        segment_generation = generation
        engine.feed_many(shifted)
        inferred = "".join(
            key.char for key in live.keys[keys_before:] if not key.deleted
        )
        seg_stats = EngineStats(
            **{
                f.name: getattr(live.stats, f.name) - getattr(stats_before, f.name)
                for f in fields(EngineStats)
            }
        )

        seg_drift = drift_injector.stats if drift_injector is not None else DriftStats()
        drift_totals.reads_scaled += seg_drift.reads_scaled
        drift_totals.thermal_samples += seg_drift.thermal_samples
        drift_totals.geometry_samples += seg_drift.geometry_samples
        drift_totals.min_thermal_factor = min(
            drift_totals.min_thermal_factor, seg_drift.min_thermal_factor
        )

        recalibrated = False
        if service is not None:
            evidence = engine.drain_evidence()
            service.observe(device_id, seg_stats, evidence=evidence)
            if service.should_recalibrate(device_id):
                refit = service.recalibrate(device_id, engine.model)
                if refit is not None:
                    engine.swap_model(refit)
                    generation += 1
                    recalibrated = True
                    report.recalibrations += 1

        report.segments.append(
            SegmentReport(
                index=index,
                start_s=round(cursor, 4),
                inferred=inferred,
                exact=inferred == credential,
                char_accuracy=round(_char_accuracy(inferred, credential), 4),
                keys_inferred=seg_stats.keys_inferred,
                noise_events=seg_stats.noise_events,
                low_confidence_keys=seg_stats.low_confidence_keys,
                thermal_factor=round(
                    drift_injector.thermal_factor(trace.end_time_s)
                    if drift_injector is not None
                    else 1.0,
                    4,
                ),
                drift_active=seg_drift.reads_scaled > 0,
                recalibrated=recalibrated,
                model_version=segment_generation,
            )
        )
        cursor += trace.end_time_s + segment_gap_s

    engine.finish()
    report.model_swaps = engine.model_swaps
    report.store_versions = len(versioned) if versioned is not None else 0
    report.drift = drift_totals.as_dict()

    baseline = [s for s in report.segments if not s.drift_active]
    drifted = [
        s for s in report.segments if s.drift_active and s.model_version == 0
    ]
    # "recovered" is the stable regime: segments after the *last* re-fit
    # (mid-chase segments between re-fits are still converging and count
    # for neither phase)
    recal_indices = [s.index for s in report.segments if s.recalibrated]
    last_recal = recal_indices[-1] if recal_indices else None
    recovered = [
        s
        for s in report.segments
        if s.drift_active and last_recal is not None and s.index > last_recal
    ]
    report.baseline_exact = _phase_mean([float(s.exact) for s in baseline])
    report.drifted_exact = _phase_mean([float(s.exact) for s in drifted])
    report.recovered_exact = _phase_mean([float(s.exact) for s in recovered])
    report.baseline_chars = _phase_mean([s.char_accuracy for s in baseline])
    report.drifted_chars = _phase_mean([s.char_accuracy for s in drifted])
    report.recovered_chars = _phase_mean([s.char_accuracy for s in recovered])
    if report.baseline_exact:
        post = (
            report.recovered_exact
            if report.recovered_exact is not None
            else report.drifted_exact
        )
        if post is None:
            # no drift ever became active: accuracy was never threatened
            report.recovery_ratio = 1.0
        else:
            report.recovery_ratio = round(post / report.baseline_exact, 4)

    if metrics.enabled:
        metrics.counter("lifecycle.segments").inc(len(report.segments))
        if report.recalibrations:
            metrics.counter("lifecycle.recalibrations").inc(report.recalibrations)
        for name, value in drift_totals.as_dict().items():
            if name == "min_thermal_factor":
                gauge = metrics.gauge("drift.min_thermal_factor")
                if gauge.value == 0.0 or value < gauge.value:
                    gauge.set(value)
            elif value > 0:
                metrics.counter(f"drift.{name}").inc(int(value))
    return report
