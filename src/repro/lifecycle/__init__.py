"""Online signature lifecycle: drift, recalibration, hot model swap.

Production inference means models that age.  This package gives the
attack (and the fleet behind it) a model lifecycle:

* :mod:`repro.lifecycle.drift` — seeded, serializable :class:`DriftPlan`s
  injected at the KGSL boundary next to ``repro.faults``: thermal
  throttling scales counter magnitudes (ramp or step), app updates shift
  popup geometry per counter.  ``drift=None`` installs no hook and is
  byte-identical to a build without this package.
* :mod:`repro.lifecycle.calibration` — a :class:`CalibrationService`
  consuming the suspect signals the engine already produces
  (``EngineStats.low_confidence_keys``, unexplained-noise explosions)
  and re-fitting per-device signatures once a threshold trips.
* :mod:`repro.lifecycle.runner` — the headline demonstration:
  :func:`run_lifecycle` streams one long session through a single
  :class:`~repro.core.online.OnlineEngine` while drift degrades
  accuracy, recalibration triggers, and a hot model swap (the
  ``feed_many`` re-batching seam) restores it — without restarting the
  session.

The versioned, checksummed model store the service writes into lives in
:mod:`repro.core.model_store` (:class:`VersionedModelStore`).  The
handbook is ``docs/lifecycle.md``.
"""

from repro.lifecycle.calibration import (
    CALIBRATION_ENV,
    CALIBRATION_PROFILES,
    CalibrationPolicy,
    CalibrationService,
    estimate_drift_ratio,
    resolve_calibration,
)
from repro.lifecycle.drift import (
    DRIFT_PROFILE_ENV,
    DRIFT_PROFILES,
    DriftInjector,
    DriftPlan,
    DriftStats,
    drift_plan_from_env,
    resolve_drift_plan,
)
from repro.lifecycle.runner import LifecycleReport, SegmentReport, run_lifecycle

__all__ = [
    "DRIFT_PROFILE_ENV",
    "DRIFT_PROFILES",
    "DriftInjector",
    "DriftPlan",
    "DriftStats",
    "drift_plan_from_env",
    "resolve_drift_plan",
    "CALIBRATION_ENV",
    "CALIBRATION_PROFILES",
    "CalibrationPolicy",
    "CalibrationService",
    "estimate_drift_ratio",
    "resolve_calibration",
    "LifecycleReport",
    "SegmentReport",
    "run_lifecycle",
]
