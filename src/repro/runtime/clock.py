"""Virtual time for the streaming session runtime.

Every layer of the online attack is driven by *simulated* time: the KGSL
device file serves counter values at its :class:`~repro.kgsl.device_file.
DeviceClock`'s current instant, the sampler schedules reads on nominal
8 ms ticks, and the engine reasons about inter-read gaps.  The runtime
adds one more clock on top: a **global virtual timeline** that orders the
events of many concurrent victim sessions, so a single process can
multiplex hundreds of eavesdropping sessions deterministically — no
threads, no wall-clock sleeps.

Two flavours:

* :class:`VirtualClock` — the runtime's merge clock.  Each session's
  device clock advances independently; the virtual clock tracks the
  frontier of *dispatched* events and therefore only ever moves forward
  (``advance_to`` clamps instead of raising, because independent session
  timelines are merged in near-sorted rather than strictly sorted order).
* the per-device :class:`~repro.kgsl.device_file.DeviceClock` is
  unchanged; :class:`VirtualClock` is API-compatible with it (``now`` /
  ``set`` / ``advance``) so either can be plugged into a KGSL fd.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Anything that exposes a monotone notion of *now* in seconds."""

    @property
    def now(self) -> float: ...

    def advance_to(self, t: float) -> None: ...


class VirtualClock:
    """A forward-only simulated clock.

    ``advance_to`` is the merge operation used by the runtime: moving to
    an earlier instant is a no-op, never an error, because the global
    timeline is the *maximum* over all sessions' dispatched event times.
    ``set``/``advance`` keep the stricter device-clock contract so a
    ``VirtualClock`` can stand in for a ``DeviceClock``.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def advance_to(self, t: float) -> None:
        if t > self.now:
            self.now = t

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("clock cannot go backwards")
        self.now += dt

    def set(self, t: float) -> None:
        if t < self.now:
            raise ValueError("clock cannot go backwards")
        self.now = t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self.now:.6f})"
