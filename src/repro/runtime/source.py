"""Event sources: where a session's timestamped payloads come from.

An :class:`EventSource` is anything that can be turned into an iterator
of ``(t, payload)`` pairs in non-decreasing ``t`` order.  The runtime
pulls from sources *lazily* — one event per scheduling step — so a
source backed by a live sampler only issues the counter reads that are
actually consumed (a mode switch abandons the rest, exactly like the
Android service dropping its idle poll when it escalates).

:class:`SamplerDeltaSource` is the production source: it drives
:meth:`~repro.kgsl.sampler.PerfCounterSampler.iter_samples` and yields
only the nonzero counter deltas — the attack's raw event stream.  With
``chunk > 1`` it pulls reads in batches and differences them with the
vectorized extractor, trading mode-switch granularity for throughput
(the multi-session batch path uses this; the monitoring service's idle
watch keeps ``chunk=1`` so escalation happens on the confirming read).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Iterator, List, Optional, Protocol, Tuple, runtime_checkable

from repro.kgsl.sampler import (
    IDLE,
    PcDelta,
    PcSample,
    PerfCounterSampler,
    SystemLoad,
    masked_delta,
    nonzero_deltas_vectorized,
)
from repro.gpu import counters as pc
from repro.obs import MetricsRegistry, resolve_registry

#: One timestamped payload flowing through a session's stage chain.
SourceEvent = Tuple[float, object]


@runtime_checkable
class EventSource(Protocol):
    """A stream of timestamped payloads in non-decreasing time order."""

    def events(self) -> Iterator[SourceEvent]: ...


class IterableSource:
    """An :class:`EventSource` over precomputed ``(t, payload)`` pairs or
    payloads with a ``.t`` attribute (e.g. a list of ``PcDelta``)."""

    def __init__(self, items: Iterable) -> None:
        self._items = items

    def events(self) -> Iterator[SourceEvent]:
        for item in self._items:
            if isinstance(item, tuple):
                yield item
            else:
                yield (float(item.t), item)


class SamplerDeltaSource:
    """Streams nonzero PC deltas from a live :class:`PerfCounterSampler`.

    Args:
        sampler: the counter-reading service (owns the KGSL fd and RNG).
        t0, t1: sampling window.
        load: concurrent CPU/GPU load during the window.
        chunk: reads pulled per step.  ``1`` differences sample pairs
            incrementally; larger values batch reads through the
            vectorized extractor.
        gap_factor: a delta spanning more than ``gap_factor`` nominal
            sampling intervals is flagged ``gap=True`` (reads between
            its endpoints were dropped or deferred).
        metrics: optional :class:`repro.obs.MetricsRegistry`.  Emission
            and gap tallies are flushed once when the stream closes
            (also on abandonment by a mode switch); chunked extraction
            is additionally timed under a ``source.extract`` span.
    """

    #: Default sample-spacing multiple beyond which a delta is a gap.
    GAP_FACTOR = 3.0

    def __init__(
        self,
        sampler: PerfCounterSampler,
        t0: float,
        t1: float,
        load: SystemLoad = IDLE,
        chunk: int = 1,
        gap_factor: float = GAP_FACTOR,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        if gap_factor <= 1.0:
            raise ValueError("gap_factor must exceed 1")
        self.sampler = sampler
        self.t0 = t0
        self.t1 = t1
        self.load = load
        self.chunk = chunk
        self.gap_factor = gap_factor
        self.metrics = resolve_registry(metrics)
        self.deltas_emitted = 0
        self.gaps_detected = 0

    @property
    def start_t(self) -> float:
        return self.t0

    @property
    def reads_issued(self) -> int:
        """Counter reads actually performed so far (dropped reads excluded)."""
        return self.sampler.reads_issued

    def events(self) -> Iterator[SourceEvent]:
        ticks = self.sampler.iter_samples(self.t0, self.t1, load=self.load)
        try:
            if self.chunk == 1:
                yield from self._incremental(ticks)
            else:
                yield from self._chunked(ticks)
        finally:
            # runs on natural exhaustion AND on generator close (a mode
            # switch abandoning the stream), so the tallies always land
            if self.metrics.enabled:
                self.metrics.counter("source.deltas_emitted").inc(self.deltas_emitted)
                self.metrics.counter("source.gaps_detected").inc(self.gaps_detected)

    def _finalize(self, delta: PcDelta) -> PcDelta:
        """Stamp the gap flag on a delta spanning missed reads."""
        if delta.t - delta.prev_t > self.gap_factor * self.sampler.interval_s:
            self.gaps_detected += 1
            if not delta.gap:
                delta = replace(delta, gap=True)
        return delta

    def _incremental(self, ticks: Iterator[PcSample]) -> Iterator[SourceEvent]:
        prev: Optional[PcSample] = None
        for sample in ticks:
            if prev is not None:
                if prev.missing or sample.missing or prev.values.keys() != sample.values.keys():
                    delta = masked_delta(prev, sample)
                else:
                    diff = pc.delta(prev.values, sample.values)
                    delta = PcDelta(t=sample.t, prev_t=prev.t, values=diff)
                if delta:
                    delta = self._finalize(delta)
                    self.deltas_emitted += 1
                    yield (delta.t, delta)
            prev = sample

    def _chunked(self, ticks: Iterator[PcSample]) -> Iterator[SourceEvent]:
        prev: Optional[PcSample] = None
        while True:
            batch: List[PcSample] = []
            for sample in ticks:
                batch.append(sample)
                if len(batch) >= self.chunk:
                    break
            if not batch:
                return
            # the span brackets only the extraction call — it must not
            # cross the yields below (interleaved sessions would corrupt
            # the registry's nesting stack)
            with self.metrics.span("source.extract"):
                extracted = nonzero_deltas_vectorized(batch, prev=prev)
            for delta in extracted:
                delta = self._finalize(delta)
                self.deltas_emitted += 1
                yield (delta.t, delta)
            prev = batch[-1]
