"""Streaming session runtime: clock → source → stages → report.

The shared runtime layer under the online attack.  One
:class:`SessionRuntime` multiplexes any number of concurrent victim
sessions on a single :class:`VirtualClock` timeline; each session is an
:class:`EventSource` (typically a live counter sampler) feeding a chain
of :class:`Stage` objects (launch watch, device recognition, the
Algorithm 1 engine), and every decision is recorded in one structured
:class:`RuntimeTrace`.

See ``docs/runtime.md`` for the architecture walkthrough.
"""

from repro.runtime.clock import Clock, VirtualClock
from repro.runtime.session import Session, SessionRuntime, Stage
from repro.runtime.source import (
    EventSource,
    IterableSource,
    SamplerDeltaSource,
    SourceEvent,
)
from repro.runtime.trace import RuntimeEvent, RuntimeTrace

__all__ = [
    "Clock",
    "EventSource",
    "IterableSource",
    "RuntimeEvent",
    "RuntimeTrace",
    "SamplerDeltaSource",
    "Session",
    "SessionRuntime",
    "SourceEvent",
    "Stage",
    "VirtualClock",
]
