"""Structured event log of a runtime execution.

Everything the online pipeline decides — every sample delta dispatched,
every Algorithm 1 verdict (duplication suppressed, split merged, app
switch suppressed, correction applied), every mode transition of the
monitoring service — is recorded here as one :class:`RuntimeEvent`.
EXPERIMENTS figures and debugging sessions read this single log instead
of scraping ad-hoc per-object statistics.

Two views are maintained:

* **counters** — exact per-``(stage, kind)`` tallies, always complete;
* **events** — the event objects themselves, kept in a bounded ring so a
  100-session batch cannot grow memory without limit (``events_dropped``
  says how many fell off the front).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class RuntimeEvent:
    """One timestamped decision or observation in the runtime."""

    t: float
    session: str
    stage: str
    kind: str
    detail: Mapping[str, object] = field(default_factory=dict)


class RuntimeTrace:
    """Append-only event log with exact per-stage counters.

    Args:
        capacity: maximum number of event objects retained (the counters
            are never truncated).  ``None`` keeps everything.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.capacity = capacity
        self.events: Deque[RuntimeEvent] = deque(maxlen=capacity)
        self.counters: Dict[Tuple[str, str], int] = {}
        self.events_dropped = 0

    # ------------------------------------------------------------------

    def emit(
        self, t: float, session: str, stage: str, kind: str, **detail: object
    ) -> RuntimeEvent:
        """Record one event; returns it for convenience."""
        event = RuntimeEvent(t=t, session=session, stage=stage, kind=kind, detail=detail)
        if self.capacity is not None and len(self.events) == self.capacity:
            self.events_dropped += 1
        self.events.append(event)
        key = (stage, kind)
        self.counters[key] = self.counters.get(key, 0) + 1
        return event

    @property
    def emitted(self) -> int:
        """Total events ever emitted (retained + dropped off the ring).

        This is the stable event *ordinal* — shard replay uses half-open
        ``[e0, e1)`` ranges of it to address contiguous event runs even
        when a bounded ring has started dropping from the front.
        """
        return self.events_dropped + len(self.events)

    def replay(self, event: RuntimeEvent) -> RuntimeEvent:
        """Re-emit an event recorded by another trace, preserving its
        payload; capacity accounting and counters apply as usual."""
        return self.emit(
            event.t, event.session, event.stage, event.kind, **dict(event.detail)
        )

    # ------------------------------------------------------------------

    def count(self, kind: Optional[str] = None, stage: Optional[str] = None) -> int:
        """Exact tally over the whole run (ring truncation never applies)."""
        return sum(
            n
            for (s, k), n in self.counters.items()
            if (stage is None or s == stage) and (kind is None or k == kind)
        )

    def select(
        self,
        kind: Optional[str] = None,
        session: Optional[str] = None,
        stage: Optional[str] = None,
    ) -> List[RuntimeEvent]:
        """Retained events matching the given filters, in dispatch order."""
        return [
            e
            for e in self.events
            if (kind is None or e.kind == kind)
            and (session is None or e.session == session)
            and (stage is None or e.stage == stage)
        ]

    def stage_counters(self, stage: str) -> Dict[str, int]:
        """Per-kind counts for one stage."""
        return {k: n for (s, k), n in self.counters.items() if s == stage}

    def summary(self) -> Dict[str, int]:
        """Flat ``stage.kind -> count`` mapping, sorted for stable output."""
        return {
            f"{stage}.{kind}": self.counters[(stage, kind)]
            for stage, kind in sorted(self.counters)
        }

    def __len__(self) -> int:
        return len(self.events)
