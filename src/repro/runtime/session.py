"""The session runtime: N concurrent eavesdropping sessions, one timeline.

The paper's online phase is a stream — the monitoring service reads
counters every 8 ms and feeds nonzero deltas to Algorithm 1 as they
appear.  :class:`SessionRuntime` is that loop, generalized: every victim
session is a :class:`Session` (an :class:`~repro.runtime.source.EventSource`
plus a chain of :class:`Stage` objects), and the runtime merges all
sessions onto one :class:`~repro.runtime.clock.VirtualClock` timeline,
always advancing the session whose stream is furthest behind.

Scheduling is **pull-then-dispatch**: the runtime never looks ahead into
a source, because pulling a sample *is* the side effect (an ioctl read,
an RNG draw, a power-model charge).  The heap is keyed by each session's
last dispatched event time, which makes the global dispatch order
near-sorted — exact within a session, off by at most one in-flight event
across sessions, which is all independent victim devices need.

A stage can replace its session's source and stage chain mid-stream via
:meth:`Session.switch_mode`; the swap is applied after the current
dispatch completes.  This is how the monitoring service escalates from
the 4 Hz idle watch to the 8 ms attack loop without a hand-rolled outer
loop.
"""

from __future__ import annotations

import heapq
import time
from typing import Callable, Iterable, Iterator, List, Optional, Protocol, Sequence, Tuple

from repro.obs import MetricsRegistry, resolve_registry
from repro.runtime.clock import VirtualClock
from repro.runtime.source import EventSource, SourceEvent
from repro.runtime.trace import RuntimeTrace


class Stage(Protocol):
    """One processing step in a session's chain.

    ``on_event`` receives each upstream event and may return events for
    the next stage (or ``None`` to consume).  ``on_end`` is called once
    when the session's source is exhausted; its emissions also flow
    downstream before the later stages' own ``on_end``.
    """

    name: str

    def on_event(
        self, session: "Session", t: float, payload: object
    ) -> Optional[Iterable[SourceEvent]]: ...

    def on_end(
        self, session: "Session", t: float
    ) -> Optional[Iterable[SourceEvent]]: ...


class Session:
    """One victim session scheduled by the runtime."""

    def __init__(
        self,
        session_id: str,
        source: EventSource,
        stages: Sequence[Stage],
        on_finish: Optional[Callable[["Session"], None]] = None,
    ) -> None:
        self.id = session_id
        self.source = source
        self.stages: List[Stage] = list(stages)
        self.on_finish = on_finish
        self.result: object = None
        self.finished = False
        self.last_t = float(getattr(source, "start_t", 0.0))
        self.events_dispatched = 0
        self.mode_switches = 0
        self.degraded = False
        self.degraded_reasons: List[str] = []
        self.runtime: Optional["SessionRuntime"] = None
        self._iter: Optional[Iterator[SourceEvent]] = None
        self._replacement: Optional[Tuple[EventSource, List[Stage]]] = None

    # -- stage-facing API ----------------------------------------------

    @property
    def trace(self) -> RuntimeTrace:
        assert self.runtime is not None, "session is not attached to a runtime"
        return self.runtime.trace

    def mark_degraded(self, t: float, reason: str) -> None:
        """Record that this session is running in degraded mode.

        Emits one ``degraded`` trace event per distinct *reason* (the
        event log stays bounded however noisy the fault plan is); the
        session-level flag feeds the final result objects.
        """
        self.degraded = True
        if reason in self.degraded_reasons:
            return
        self.degraded_reasons.append(reason)
        self.trace.emit(t, self.id, "runtime", "degraded", detail=reason)

    def switch_mode(self, source: EventSource, stages: Sequence[Stage]) -> None:
        """Replace this session's source and stage chain.

        Takes effect after the current dispatch; the remainder of the old
        source is abandoned unread (its sampler stops polling).
        """
        self._replacement = (source, list(stages))

    # -- runtime-facing internals --------------------------------------

    def _events(self) -> Iterator[SourceEvent]:
        if self._iter is None:
            self._iter = iter(self.source.events())
        return self._iter

    def _apply_switch(self) -> bool:
        if self._replacement is None:
            return False
        self.source, self.stages = self._replacement
        self._replacement = None
        self._iter = None
        self.mode_switches += 1
        return True


_END = object()

#: One scheduler decision recorded in a step log:
#: ``(kind, session_id, t, e0, e1)`` where ``kind`` is ``start`` /
#: ``event`` / ``end_switch`` / ``end``, ``t`` is the session's heap key
#: after the step, and ``[e0, e1)`` is the half-open range of trace
#: ordinals (:attr:`RuntimeTrace.emitted`) this step produced.
StepRecord = Tuple[str, str, float, int, int]


class SessionRuntime:
    """Schedules N concurrent sessions on one virtual timeline.

    ``step_log`` (optional) records one :data:`StepRecord` per scheduler
    decision.  The sharded runtime (`repro.parallel`) runs disjoint
    session subsets in worker processes with a step log each, then
    replays the heap algorithm over the merged logs to reconstruct the
    exact global dispatch — and therefore trace — order a serial run
    would have produced.
    """

    def __init__(
        self,
        clock: Optional[VirtualClock] = None,
        trace: Optional[RuntimeTrace] = None,
        metrics: Optional[MetricsRegistry] = None,
        step_log: Optional[List[StepRecord]] = None,
    ) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.trace = trace if trace is not None else RuntimeTrace()
        self.metrics = resolve_registry(metrics)
        self.sessions: List[Session] = []
        self.step_log = step_log
        self._seq = 0

    # ------------------------------------------------------------------

    def add_session(self, session: Session) -> Session:
        session.runtime = self
        self.sessions.append(session)
        return session

    def session(self, session_id: str) -> Session:
        for s in self.sessions:
            if s.id == session_id:
                return s
        raise KeyError(session_id)

    # ------------------------------------------------------------------

    def run(self) -> RuntimeTrace:
        """Drain every session; returns the shared event log.

        With an enabled registry the scheduler publishes its throughput
        afterwards (sessions completed, events dispatched, wall and
        virtual time, sessions/s).  All wall-clock reads sit at the run
        boundary; the dispatch loop itself never touches the registry.
        """
        wall_start = time.perf_counter() if self.metrics.enabled else 0.0
        run_span = self.metrics.span("runtime.run", clock=self.clock)
        with run_span:
            self._run(heap=[])
        if self.metrics.enabled:
            self._flush_metrics(time.perf_counter() - wall_start)
        return self.trace

    def _run(self, heap: List[Tuple[float, int, Session]]) -> None:
        for session in self.sessions:
            if not session.finished:
                e0 = self.trace.emitted
                self.trace.emit(session.last_t, session.id, "runtime", "session_start")
                self._record("start", session, session.last_t, e0)
                self._push(heap, session)
        while heap:
            _, _, session = heapq.heappop(heap)
            e0 = self.trace.emitted
            event = next(session._events(), _END)
            if event is _END:
                self._end_session(session)
                if session._apply_switch():
                    # a stage escalated exactly at end-of-stream
                    self.trace.emit(
                        session.last_t, session.id, "runtime", "mode_switch"
                    )
                    self._record("end_switch", session, session.last_t, e0)
                    self._push(heap, session)
                    continue
                self._finish(session)
                self._record("end", session, session.last_t, e0)
                continue
            t, payload = event
            self.clock.advance_to(t)
            session.last_t = t
            session.events_dispatched += 1
            self._dispatch(session, t, payload)
            if session._apply_switch():
                self.trace.emit(t, session.id, "runtime", "mode_switch")
            self._record("event", session, t, e0)
            self._push(heap, session)

    def _record(self, kind: str, session: Session, t: float, e0: int) -> None:
        if self.step_log is not None:
            self.step_log.append((kind, session.id, t, e0, self.trace.emitted))

    def _flush_metrics(self, wall_s: float) -> None:
        """One post-run rollup of scheduler throughput (enabled registry
        only; repeated ``run()`` calls on one runtime accumulate)."""
        completed = sum(1 for s in self.sessions if s.finished)
        events = sum(s.events_dispatched for s in self.sessions)
        switches = sum(s.mode_switches for s in self.sessions)
        degraded = sum(1 for s in self.sessions if s.degraded)
        metrics = self.metrics
        metrics.counter("runtime.sessions_completed").inc(completed)
        metrics.counter("runtime.events_dispatched").inc(events)
        metrics.counter("runtime.mode_switches").inc(switches)
        metrics.counter("runtime.sessions_degraded").inc(degraded)
        metrics.gauge("runtime.wall_s").set(wall_s)
        metrics.gauge("runtime.virtual_span_s").set(self.clock.now)
        metrics.gauge("runtime.sessions_per_s").set(
            completed / wall_s if wall_s > 0 else 0.0
        )

    # ------------------------------------------------------------------

    def _push(self, heap: List[Tuple[float, int, Session]], session: Session) -> None:
        self._seq += 1
        heapq.heappush(heap, (session.last_t, self._seq, session))

    def _dispatch(self, session: Session, t: float, payload: object) -> None:
        items: List[SourceEvent] = [(t, payload)]
        for stage in session.stages:
            emitted: List[SourceEvent] = []
            for item_t, item in items:
                out = stage.on_event(session, item_t, item)
                if out:
                    emitted.extend(out)
            items = emitted
            if not items:
                break

    def _end_session(self, session: Session) -> None:
        t = session.last_t
        for i, stage in enumerate(session.stages):
            out = stage.on_end(session, t)
            if not out:
                continue
            # late emissions flow through the rest of the chain first
            items = list(out)
            for later in session.stages[i + 1 :]:
                emitted: List[SourceEvent] = []
                for item_t, item in items:
                    nxt = later.on_event(session, item_t, item)
                    if nxt:
                        emitted.extend(nxt)
                items = emitted
                if not items:
                    break

    def _finish(self, session: Session) -> None:
        session.finished = True
        self.trace.emit(session.last_t, session.id, "runtime", "session_end")
        if session.on_finish is not None:
            session.on_finish(session)
