"""Multi-process session sharding: scale the runtime across cores.

The serial :class:`~repro.runtime.session.SessionRuntime` interleaves
every victim session on one core.  This package shards a batch across
worker processes and merges the results back **byte-identically** to
the serial run:

* :class:`ShardPlan` — deterministic, seed-keyed partition of session
  indices across workers;
* :class:`ShardedRuntime` — the process-pool driver (spawn-safe
  payloads, crash containment, metrics merge);
* :mod:`repro.parallel.worker` — the picklable worker entry point;
* :mod:`repro.parallel.merge` — the scheduler-replay merge that
  reconstructs the serial trace order from per-shard step logs.

The facade surface is ``repro.api.run_sessions(..., workers=N)`` and
``repro.api.monitor(..., workers=N)``; the CLI flag is ``--workers``.
See ``docs/parallel.md`` for the design and the parity contract.
"""

from repro.parallel.merge import merge_attack_outputs, synthesize_crashed_shard
from repro.parallel.plan import ShardPlan
from repro.parallel.sharded import ShardedRuntime
from repro.parallel.worker import SessionStepLog, ShardOutput, run_shard

__all__ = [
    "ShardPlan",
    "ShardedRuntime",
    "ShardOutput",
    "SessionStepLog",
    "run_shard",
    "merge_attack_outputs",
    "synthesize_crashed_shard",
]
