"""Deterministic partitioning of a session batch across workers.

A :class:`ShardPlan` assigns each global session index to a shard with
``(seed + index) % workers`` — a seed-keyed round-robin.  The properties
the sharded runtime depends on:

* **deterministic** — the same ``(n_sessions, workers, seed)`` triple
  always yields the same assignment, on any platform, so a re-run (or a
  crashed shard's post-mortem) can name exactly which sessions each
  worker owned;
* **balanced** — shard sizes differ by at most one;
* **seed-keyed** — changing the batch seed rotates which sessions ride
  together, so a pathological co-location (e.g. the two slowest victims
  on one worker) is not pinned to the index layout forever.

Shards may be empty (``workers > n_sessions``); the runtime simply does
not spawn a process for them, and the merge step treats an empty shard
as contributing nothing — one of the tested edge cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class ShardPlan:
    """The assignment of ``n_sessions`` global indices to ``workers`` shards."""

    n_sessions: int
    workers: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.n_sessions < 0:
            raise ValueError("n_sessions must be >= 0")

    def shard_of(self, index: int) -> int:
        """The shard that owns global session ``index``."""
        if not 0 <= index < self.n_sessions:
            raise IndexError(f"session index {index} out of range")
        return (self.seed + index) % self.workers

    def shards(self) -> List[List[int]]:
        """Global session indices per shard, ascending within each shard."""
        out: List[List[int]] = [[] for _ in range(self.workers)]
        for index in range(self.n_sessions):
            out[self.shard_of(index)].append(index)
        return out

    @property
    def max_shard_size(self) -> int:
        return max((len(s) for s in self.shards()), default=0)
