"""The spawn-safe worker half of the sharded runtime.

:func:`run_shard` is the function a worker process executes.  It is
deliberately a module-level function taking one picklable ``payload``
dict, so it works under every multiprocessing start method — including
``spawn``, where the child imports this module fresh and receives *no*
live parent objects.  Workers therefore rebuild their engines from
serialized state:

* the :class:`~repro.api.AttackConfig` travels as its ``to_dict()``
  form and is revived with ``AttackConfig.from_dict``;
* the model store travels either as its ``to_dict()`` payload or — the
  cheaper option for big stores — as a filesystem path the worker
  ``ModelStore.load``s itself;
* victim :class:`~repro.android.device.SessionTrace` objects are plain
  picklable dataclasses and ship directly.

Each shard runs its sessions on a private
:class:`~repro.runtime.session.SessionRuntime` with an unbounded
:class:`~repro.runtime.trace.RuntimeTrace` and a step log, and returns a
:class:`ShardOutput`: per-session results (trace references stripped —
the parent reattaches the merged trace), the shard's raw events, the
per-session scheduler step logs the merge replays, and a metrics
snapshot when instrumentation is on.

Fault injection for tests rides in the payload's ``fail`` field
(mirroring the :mod:`repro.faults` idiom of deterministic, declared
failures): ``"raise"`` fails before any session runs, ``"mid"`` fails
after the shard's work is done but before its output is returned (a
worker dying mid-shard — the work is lost), and ``"exit"`` hard-kills
the process, breaking the pool.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.model_store import ModelStore
from repro.core.service import MonitoringService
from repro.obs import MetricsRegistry
from repro.runtime.session import Session, SessionRuntime, StepRecord
from repro.runtime.trace import RuntimeEvent, RuntimeTrace


@dataclass
class SessionStepLog:
    """One session's ordered scheduler decisions inside its shard.

    ``steps`` entries are ``(kind, t, e0, e1)``: the step kind
    (``start`` / ``event`` / ``end_switch`` / ``end``), the session's
    heap key after the step, and the half-open range of shard-trace
    event ordinals the step emitted.
    """

    index: int
    session_id: str
    steps: List[Tuple[str, float, int, int]] = field(default_factory=list)


@dataclass
class ShardOutput:
    """Everything one worker sends back to the parent."""

    shard: int
    indices: List[int]
    session_logs: List[SessionStepLog]
    events: List[RuntimeEvent]
    results: List[object]
    snapshot: Optional[Dict[str, object]] = None


def _rebuild(payload: Dict[str, object]):
    """Revive (config, store, metrics) from the pickled payload."""
    from repro.api import AttackConfig

    config = AttackConfig.from_dict(payload["config"])  # type: ignore[arg-type]
    store_path = payload.get("store_path")
    if store_path:
        store = ModelStore.load(store_path)  # type: ignore[arg-type]
    else:
        store = ModelStore.from_dict(payload["store"])  # type: ignore[arg-type]
    metrics = MetricsRegistry() if payload.get("metrics") else None
    return config, store, metrics


def _inject_failure(payload: Dict[str, object], point: str) -> None:
    if payload.get("fail") == "exit" and point == "pre":
        os._exit(13)
    if payload.get("fail") == "raise" and point == "pre":
        raise RuntimeError(f"injected worker fault in shard {payload.get('shard')}")
    if payload.get("fail") == "mid" and point == "post":
        raise RuntimeError(
            f"injected mid-shard worker fault in shard {payload.get('shard')}"
        )


def run_shard(payload: Dict[str, object]) -> ShardOutput:
    """Run one shard's sessions; the process-pool entry point."""
    _inject_failure(payload, "pre")
    if payload.get("kind") == "service":
        output = _run_service_shard(payload)
    else:
        output = _run_attack_shard(payload)
    _inject_failure(payload, "post")
    return output


def _run_attack_shard(payload: Dict[str, object]) -> ShardOutput:
    import repro.api as api

    config, store, metrics = _rebuild(payload)
    # same construction the serial facade uses, so a shard of one is the
    # serial pipeline
    attack = api._attacker(store, config, metrics=metrics)
    indices: List[int] = list(payload["indices"])  # type: ignore[arg-type]
    traces = payload["traces"]
    seed = int(payload["seed"])  # type: ignore[arg-type]

    shard_trace = RuntimeTrace(capacity=None)
    step_log: List[StepRecord] = []
    runtime = SessionRuntime(trace=shard_trace, metrics=metrics, step_log=step_log)
    sessions: List[Session] = []
    for global_i, victim in zip(indices, traces):  # type: ignore[arg-type]
        # identical naming and seeding to the serial run_sessions path:
        # session i is always "attack-i" seeded seed+i, whichever shard
        # (or single process) it lands on
        source, stages = attack.session_spec(
            victim, load=config.load, seed=seed + global_i
        )
        sessions.append(
            runtime.add_session(Session(f"attack-{global_i}", source, stages))
        )
    runtime.run()

    per_session: Dict[str, SessionStepLog] = {
        s.id: SessionStepLog(index=gi, session_id=s.id)
        for gi, s in zip(indices, sessions)
    }
    for kind, sid, t, e0, e1 in step_log:
        per_session[sid].steps.append((kind, t, e0, e1))

    results = []
    for s in sessions:
        result = s.result
        # the shard trace ships once via `events`; the parent reattaches
        # the merged run-level trace to every result
        result.trace = None
        if result.online is not None:
            result.online.trace = None
        results.append(result)

    return ShardOutput(
        shard=int(payload.get("shard", 0)),  # type: ignore[arg-type]
        indices=indices,
        session_logs=[per_session[s.id] for s in sessions],
        events=list(shard_trace.events),
        results=results,
        snapshot=metrics.snapshot() if metrics is not None else None,
    )


def _run_service_shard(payload: Dict[str, object]) -> ShardOutput:
    """Run one monitoring-service session per trace in the shard.

    Unlike attack sessions, each service run owns a whole runtime (idle
    watch plus escalation), so services are independent by construction:
    no step logs are needed and each report carries its own complete
    trace, which the parent replays in input order.
    """
    config, store, metrics = _rebuild(payload)
    service = MonitoringService(
        store,
        idle_interval_s=config.idle_interval_s,
        attack_interval_s=config.interval_s,
        attack_window_s=config.attack_window_s,
        fault_plan=config.resolved_fault_plan(),
        metrics=metrics,
        drift=config.resolved_drift_plan(),
        calibration=config.resolved_calibration(),
    )
    indices: List[int] = list(payload["indices"])  # type: ignore[arg-type]
    seed = int(payload["seed"])  # type: ignore[arg-type]
    results = []
    for global_i, victim in zip(indices, payload["traces"]):  # type: ignore[arg-type]
        report = service.run(
            victim,
            load=config.load,
            seed=seed + global_i,
            watch_model_key=payload.get("watch_model_key"),  # type: ignore[arg-type]
            runtime_trace=RuntimeTrace(capacity=None),
        )
        results.append(report)
    return ShardOutput(
        shard=int(payload.get("shard", 0)),  # type: ignore[arg-type]
        indices=indices,
        session_logs=[],
        events=[],
        results=results,
        snapshot=metrics.snapshot() if metrics is not None else None,
    )
