"""Recombining per-shard outputs into one serial-ordered result.

The hard part of sharding is not the fan-out, it is putting the trace
back together **byte-identically** to what a serial run would have
logged.  A timestamp sort cannot do that: the serial
:class:`~repro.runtime.session.SessionRuntime` heap is keyed by each
session's *previous* event time (pull-then-dispatch — the runtime can't
know the next event's time without pulling it), so the serial global
order is near-sorted, not sorted, and ties are broken by heap insertion
sequence.

So the merge *replays the scheduler*.  Each worker records a step log —
one ``(kind, t, e0, e1)`` record per scheduler decision, where
``[e0, e1)`` addresses the contiguous run of trace events that decision
emitted.  Because sessions are fully independent (own KGSL fd, sampler
RNG, engine), the events and heap keys a session produces are the same
whether it ran alone, in a shard, or in the serial batch; only the
*interleaving* differs.  The merge rebuilds the serial interleaving by
running the exact heap algorithm over the recorded per-session keys:
push every session with its start key in global add order, always pop
the smallest ``(t, seq)``, consume that session's next recorded step,
and replay its event range into the output trace.  By induction the
replayed heap state matches the serial heap at every pop, so the output
event order — and with a bounded output ring, the drop accounting — is
byte-identical to the serial run's.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Tuple

from repro.parallel.worker import SessionStepLog, ShardOutput
from repro.runtime.trace import RuntimeEvent, RuntimeTrace


def merge_attack_outputs(
    outputs: Iterable[ShardOutput], trace: RuntimeTrace
) -> Dict[int, object]:
    """Replay shard outputs into ``trace``; return results by global index.

    ``outputs`` may arrive in any order and may cover any subset of the
    global index space (crashed shards are synthesized by the caller
    before merging).  Raises if two shards claim the same session.
    """
    logs: Dict[int, SessionStepLog] = {}
    events_of: Dict[int, List[RuntimeEvent]] = {}
    results: Dict[int, object] = {}
    for output in outputs:
        for log, result in zip(output.session_logs, output.results):
            if log.index in logs:
                raise ValueError(f"session index {log.index} appears in two shards")
            logs[log.index] = log
            events_of[log.index] = output.events
            results[log.index] = result

    order = sorted(logs)
    cursors: Dict[int, int] = {}
    heap: List[Tuple[float, int, int]] = []
    seq = 0
    # phase 1 — the serial runtime emits every session_start (in session
    # add order) and seeds the heap before the dispatch loop begins
    for index in order:
        kind, t, e0, e1 = logs[index].steps[0]
        if kind != "start":
            raise ValueError(f"session {index}: step log does not begin with 'start'")
        for event in events_of[index][e0:e1]:
            trace.replay(event)
        cursors[index] = 1
        seq += 1
        heapq.heappush(heap, (t, seq, index))
    # phase 2 — the dispatch loop: pop the furthest-behind session,
    # replay the events its next recorded step produced, re-key it
    while heap:
        _, _, index = heapq.heappop(heap)
        log = logs[index]
        if cursors[index] >= len(log.steps):
            raise ValueError(f"session {index}: step log exhausted early")
        kind, t, e0, e1 = log.steps[cursors[index]]
        cursors[index] += 1
        for event in events_of[index][e0:e1]:
            trace.replay(event)
        if kind in ("event", "end_switch"):
            seq += 1
            heapq.heappush(heap, (t, seq, index))
        elif kind != "end":
            raise ValueError(f"session {index}: unknown step kind {kind!r}")
    for index, cursor in cursors.items():
        if cursor != len(logs[index].steps):
            raise ValueError(f"session {index}: {len(logs[index].steps) - cursor} steps unconsumed")
    return results


def synthesize_crashed_shard(
    shard: int, indices: Iterable[int], seed: int, reason: str = "worker_crashed"
) -> ShardOutput:
    """A stand-in output for a shard whose worker died.

    Every lost session becomes a degraded placeholder: a ``session_start``
    / ``degraded`` / ``session_end`` trace triple at t=0 (the session's
    start key), and an empty, ``degraded=True``
    :class:`~repro.core.pipeline.AttackResult` — so a crash surfaces as
    marked-degraded sessions in the merged batch, never as silently
    missing indices.
    """
    from repro.core.online import OnlineResult
    from repro.core.pipeline import AttackResult

    session_logs: List[SessionStepLog] = []
    events: List[RuntimeEvent] = []
    results: List[object] = []
    for index in indices:
        sid = f"attack-{index}"
        e0 = len(events)
        events.append(RuntimeEvent(0.0, sid, "runtime", "session_start"))
        start_end = len(events)
        events.append(RuntimeEvent(0.0, sid, "runtime", "degraded", {"detail": reason}))
        events.append(RuntimeEvent(0.0, sid, "runtime", "session_end"))
        session_logs.append(
            SessionStepLog(
                index=index,
                session_id=sid,
                steps=[
                    ("start", 0.0, e0, start_end),
                    ("end", 0.0, start_end, len(events)),
                ],
            )
        )
        results.append(
            AttackResult(
                online=OnlineResult(),
                model_key="",
                recognition=None,
                reads_issued=0,
                reads_dropped=0,
                degraded=True,
            )
        )
    return ShardOutput(
        shard=shard,
        indices=list(indices),
        session_logs=session_logs,
        events=events,
        results=results,
        snapshot=None,
    )
