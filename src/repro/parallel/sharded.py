"""The process-pool sharded runtime.

:class:`ShardedRuntime` fans a session batch out over worker processes
(one :class:`~repro.runtime.session.SessionRuntime` per worker), then
merges the per-shard traces, results and metrics back into one result
that is **byte-identical** to the serial run for the same seeds — same
keys, same text, same trace event order, same manifest counters.  See
:mod:`repro.parallel.merge` for why the merge replays the scheduler
instead of sorting.

Spawn safety: workers receive only picklable payloads (the
``AttackConfig`` dict, the model store dict *or a path to it*, the
victim traces, global indices and the seed) and rebuild everything else
themselves — see :mod:`repro.parallel.worker`.  The default start
method is ``fork`` where the platform offers it (cheapest), otherwise
``spawn``; pass ``mp_context="inline"`` to run shards sequentially in
the parent process (no pool), which keeps tests deterministic and fast
while exercising the identical payload/merge path.

Failure containment: a worker that raises, or a crash that breaks the
whole pool (``BrokenProcessPool``), degrades only the sessions of the
affected shards — each lost session comes back as a
``degraded=True`` placeholder result with a ``degraded`` event in the
merged trace (reason ``worker_crashed``), never as a missing index.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.core.model_store import ModelStore
from repro.obs import MetricsRegistry, resolve_registry
from repro.parallel.merge import merge_attack_outputs, synthesize_crashed_shard
from repro.parallel.plan import ShardPlan
from repro.parallel.worker import ShardOutput, run_shard
from repro.runtime.trace import RuntimeTrace

#: Start methods tried in order when none is requested.
_PREFERRED_START_METHODS = ("fork", "spawn")


def _default_start_method() -> str:
    available = multiprocessing.get_all_start_methods()
    for method in _PREFERRED_START_METHODS:
        if method in available:
            return method
    return available[0]


class ShardedRuntime:
    """Run session batches across worker processes with serial-parity merge.

    Args:
        store: the preloaded model store — either a live
            :class:`~repro.core.model_store.ModelStore` (shipped as its
            dict form) or a path to a saved store that each worker loads
            itself.
        config: the :class:`~repro.api.AttackConfig` for every session;
            defaults to ``AttackConfig()``.
        workers: number of shards (= maximum worker processes).
        metrics: optional parent :class:`~repro.obs.MetricsRegistry`;
            when enabled, every worker records into a private registry
            and the snapshots are merged back here (counters sum,
            histograms add bucket-wise, gauges last-wins).
        mp_context: ``"fork"`` / ``"spawn"`` / ``"forkserver"`` to force
            a start method, ``"inline"`` to run shards in-process, or
            ``None`` for the platform default.
        fail_shards / fail_mode: deterministic failure injection for
            tests — the listed shard ids fail in the given mode
            (``"raise"``, ``"mid"``, or ``"exit"``; see
            :mod:`repro.parallel.worker`).
    """

    def __init__(
        self,
        store: Union[ModelStore, str, Path],
        config=None,
        workers: int = 2,
        metrics: Optional[MetricsRegistry] = None,
        mp_context: Optional[str] = None,
        fail_shards: Sequence[int] = (),
        fail_mode: str = "raise",
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if fail_mode not in ("raise", "mid", "exit"):
            raise ValueError(f"unknown fail_mode {fail_mode!r}")
        if config is None:
            from repro.api import AttackConfig

            config = AttackConfig()
        self.config = config
        self.workers = workers
        self.metrics = resolve_registry(metrics)
        self.mp_context = mp_context
        self.fail_shards = frozenset(fail_shards)
        self.fail_mode = fail_mode
        if isinstance(store, (str, Path)):
            self._store_path: Optional[str] = str(store)
            self._store_dict = None
        else:
            self._store_path = None
            self._store_dict = store.to_dict()

    # ------------------------------------------------------------------

    def _payload(
        self, shard: int, indices: List[int], traces, seed: int, kind: str, **extra
    ) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "kind": kind,
            "shard": shard,
            "config": self.config.to_dict(),
            "store_path": self._store_path,
            "store": self._store_dict,
            "indices": indices,
            "traces": [traces[i] for i in indices],
            "seed": seed,
            "metrics": self.metrics.enabled,
        }
        if shard in self.fail_shards:
            payload["fail"] = self.fail_mode
        payload.update(extra)
        return payload

    def _execute(self, payloads: List[Dict[str, object]]):
        """Run every shard payload; returns (outputs, crashed_payloads)."""
        outputs: List[ShardOutput] = []
        crashed: List[Dict[str, object]] = []
        if self.mp_context == "inline":
            for payload in payloads:
                try:
                    outputs.append(run_shard(payload))
                except Exception:
                    crashed.append(payload)
            return outputs, crashed
        method = self.mp_context or _default_start_method()
        context = multiprocessing.get_context(method)
        max_workers = max(1, min(self.workers, len(payloads)))
        with ProcessPoolExecutor(max_workers=max_workers, mp_context=context) as pool:
            futures = [(payload, pool.submit(run_shard, payload)) for payload in payloads]
            for payload, future in futures:
                try:
                    outputs.append(future.result())
                except Exception:
                    # includes BrokenProcessPool: a hard-killed worker
                    # takes down the pool, and every unfinished shard
                    # lands here and degrades
                    crashed.append(payload)
        return outputs, crashed

    def _merged_outputs(self, payloads):
        wall_start = time.perf_counter()
        outputs, crashed = self._execute(payloads)
        for payload in crashed:
            outputs.append(
                synthesize_crashed_shard(
                    payload["shard"], payload["indices"], payload["seed"]
                )
            )
        if self.metrics.enabled:
            for output in sorted(outputs, key=lambda o: o.shard):
                if output.snapshot is not None:
                    self.metrics.merge_snapshot(output.snapshot)
            if crashed:
                self.metrics.counter("parallel.worker_crashes").inc(len(crashed))
            self.metrics.gauge("parallel.workers").set(self.workers)
            self.metrics.gauge("parallel.shards_run").set(len(payloads))
            self.metrics.gauge("parallel.wall_s").set(time.perf_counter() - wall_start)
        return outputs

    # ------------------------------------------------------------------

    def run_sessions(
        self,
        traces: Sequence,
        seed: int = 99,
        runtime_trace: Optional[RuntimeTrace] = None,
    ):
        """The sharded equivalent of :func:`repro.core.pipeline.run_sessions`.

        Returns a :class:`~repro.core.pipeline.SessionBatch` in global
        session order with the merged trace attached to every result;
        output is byte-identical to the serial batch for the same seeds.
        """
        from repro.core.pipeline import SessionBatch

        plan = ShardPlan(len(traces), self.workers, seed=seed)
        payloads = [
            self._payload(shard, indices, traces, seed, kind="attack")
            for shard, indices in enumerate(plan.shards())
            if indices
        ]
        outputs = self._merged_outputs(payloads)
        trace = runtime_trace if runtime_trace is not None else RuntimeTrace()
        results_by_index = merge_attack_outputs(outputs, trace)
        if set(results_by_index) != set(range(len(traces))):
            missing = sorted(set(range(len(traces))) - set(results_by_index))
            raise RuntimeError(f"merge lost sessions {missing}")
        results = []
        for index in range(len(traces)):
            result = results_by_index[index]
            result.trace = trace
            if getattr(result, "online", None) is not None:
                result.online.trace = trace
            results.append(result)
        batch = SessionBatch(results)
        if self.metrics.enabled:
            batch.manifest = self.metrics.manifest(sessions=len(traces))
        return batch

    def run_services(
        self,
        traces: Sequence,
        seed: int = 1234,
        watch_model_key: Optional[str] = None,
        runtime_trace: Optional[RuntimeTrace] = None,
    ) -> List[object]:
        """Run one monitoring-service pass per trace across the shards.

        Service runs are independent whole pipelines (idle watch →
        escalation → attack), so the merge is simpler than for attack
        batches: reports come back in input order, each carrying its own
        complete trace; with ``runtime_trace`` given, every report's
        events are replayed into it (in input order) and it replaces the
        per-report traces.  Worker metrics merge exactly as for
        :meth:`run_sessions`.  A crashed shard degrades its reports.
        """
        from repro.core.service import ServiceReport

        plan = ShardPlan(len(traces), self.workers, seed=seed)
        payloads = [
            self._payload(
                shard,
                indices,
                traces,
                seed,
                kind="service",
                watch_model_key=watch_model_key,
            )
            for shard, indices in enumerate(plan.shards())
            if indices
        ]
        outputs = self._merged_outputs(payloads)
        reports: Dict[int, object] = {}
        for output in outputs:
            if output.session_logs:
                continue  # a synthesized crash placeholder (attack-shaped)
            for position, index in enumerate(output.indices):
                reports[index] = output.results[position]
        for index in range(len(traces)):
            if index not in reports:
                # crashed shards synthesize attack placeholders; map them
                # onto degraded service reports here
                reports[index] = ServiceReport(
                    launch_detected_at=None,
                    inferred_text="",
                    degraded=True,
                )
        ordered = [reports[index] for index in range(len(traces))]
        if runtime_trace is not None:
            for report in ordered:
                trace = getattr(report, "trace", None)
                if trace is not None:
                    for event in trace.events:
                        runtime_trace.replay(event)
                report.trace = runtime_trace
        return ordered
