"""Human typing model: key-press durations and inter-key intervals.

The paper collects typing traces from 5 student volunteers on a Oneplus 8
Pro (Fig 16): durations cluster around 60-120 ms and intervals spread from
~0.1 s to ~1 s with per-volunteer heterogeneity.  Section 7.2 then splits
the collected intervals into three equal-sized speed tiers: fast
(<0.24 s), medium (0.24-0.4 s) and slow (>0.4 s).

We model each volunteer with log-normal duration/interval distributions
whose parameters are fitted to the figure's clouds, and reproduce the
speed-tier split by resampling the pooled intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Speed-tier boundaries from Section 7.2 (seconds between key presses).
FAST_MAX_INTERVAL_S = 0.24
MEDIUM_MAX_INTERVAL_S = 0.40

#: Physiological floor: the shortest interval between two deliberate key
#: presses (Section 5.1 cites [43] and uses 75 ms for the dedup window).
MIN_HUMAN_INTERVAL_S = 0.075


@dataclass(frozen=True)
class VolunteerProfile:
    """Log-normal typing parameters for one volunteer."""

    name: str
    duration_median_s: float
    duration_sigma: float
    interval_median_s: float
    interval_sigma: float

    def sample_duration(self, rng: np.random.Generator) -> float:
        value = float(rng.lognormal(np.log(self.duration_median_s), self.duration_sigma))
        return float(np.clip(value, 0.03, 0.35))

    def sample_interval(self, rng: np.random.Generator) -> float:
        value = float(rng.lognormal(np.log(self.interval_median_s), self.interval_sigma))
        return float(np.clip(value, MIN_HUMAN_INTERVAL_S, 2.5))


#: The five volunteers of Fig 16.  Medians/sigmas chosen so the pooled
#: interval distribution splits near the paper's 0.24 s / 0.4 s tier edges.
VOLUNTEERS: Tuple[VolunteerProfile, ...] = (
    VolunteerProfile("volunteer1", 0.072, 0.25, 0.21, 0.42),
    VolunteerProfile("volunteer2", 0.085, 0.30, 0.30, 0.38),
    VolunteerProfile("volunteer3", 0.066, 0.22, 0.26, 0.45),
    VolunteerProfile("volunteer4", 0.095, 0.28, 0.42, 0.40),
    VolunteerProfile("volunteer5", 0.078, 0.26, 0.34, 0.50),
)


def volunteer(name: str) -> VolunteerProfile:
    for profile in VOLUNTEERS:
        if profile.name == name:
            return profile
    raise KeyError(f"unknown volunteer {name!r}")


@dataclass(frozen=True)
class KeyTiming:
    """Timing of one key press within a typed string."""

    start_s: float
    duration_s: float


class TypingModel:
    """Generates human-like key timing sequences.

    Mirrors the paper's methodology: the bot emulates key presses using
    durations and intervals drawn from the volunteers' collected data
    (Section 7: "To mimic real human inputs ...").
    """

    def __init__(
        self,
        rng: np.random.Generator,
        profiles: Sequence[VolunteerProfile] = VOLUNTEERS,
    ) -> None:
        if not profiles:
            raise ValueError("need at least one volunteer profile")
        self.rng = rng
        self.profiles = list(profiles)

    def timings(
        self,
        n_keys: int,
        start_s: float = 0.0,
        profile: Optional[VolunteerProfile] = None,
        interval_range: Optional[Tuple[float, float]] = None,
    ) -> List[KeyTiming]:
        """Timing for ``n_keys`` presses.

        Args:
            n_keys: number of key presses.
            start_s: time of the first press.
            profile: fix one volunteer; default draws one at random per
                string, like the paper's per-trace emulation.
            interval_range: optional (lo, hi) clamp used to emulate a
                speed tier (Section 7.2).
        """
        if n_keys <= 0:
            return []
        chosen = profile if profile is not None else self.profiles[self.rng.integers(len(self.profiles))]
        timings: List[KeyTiming] = []
        t = start_s
        for i in range(n_keys):
            duration = chosen.sample_duration(self.rng)
            timings.append(KeyTiming(start_s=t, duration_s=duration))
            interval = chosen.sample_interval(self.rng)
            if interval_range is not None:
                lo, hi = interval_range
                attempts = 0
                while not lo <= interval <= hi and attempts < 64:
                    interval = chosen.sample_interval(self.rng)
                    attempts += 1
                interval = float(np.clip(interval, lo, hi))
            t += max(interval, duration + 0.02)
        return timings

    def speed_tier_range(self, tier: str) -> Tuple[float, float]:
        """Interval clamp for the paper's fast/medium/slow tiers."""
        if tier == "fast":
            return (MIN_HUMAN_INTERVAL_S, FAST_MAX_INTERVAL_S)
        if tier == "medium":
            return (FAST_MAX_INTERVAL_S, MEDIUM_MAX_INTERVAL_S)
        if tier == "slow":
            return (MEDIUM_MAX_INTERVAL_S, 2.5)
        raise ValueError(f"unknown speed tier {tier!r}; use fast/medium/slow")


def collect_volunteer_samples(
    rng: np.random.Generator,
    presses_per_volunteer: int = 50 * 12,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Reproduce the Fig 16 data collection: 5 volunteers x 50 strings of
    8-16 characters.  Returns per-volunteer duration and interval arrays."""
    out: Dict[str, Dict[str, np.ndarray]] = {}
    for profile in VOLUNTEERS:
        durations = np.array(
            [profile.sample_duration(rng) for _ in range(presses_per_volunteer)]
        )
        intervals = np.array(
            [profile.sample_interval(rng) for _ in range(presses_per_volunteer)]
        )
        out[profile.name] = {"durations": durations, "intervals": intervals}
    return out


def split_by_speed(intervals: np.ndarray) -> Dict[str, np.ndarray]:
    """Partition pooled intervals into the paper's three speed tiers."""
    return {
        "fast": intervals[intervals < FAST_MAX_INTERVAL_S],
        "medium": intervals[
            (intervals >= FAST_MAX_INTERVAL_S) & (intervals <= MEDIUM_MAX_INTERVAL_S)
        ],
        "slow": intervals[intervals > MEDIUM_MAX_INTERVAL_S],
    }


def speed_tier_range(tier: Optional[str]) -> Optional[Tuple[float, float]]:
    """Module-level tier → interval clamp (``None`` = unconstrained).

    The instance method :meth:`TypingModel.speed_tier_range` needs a
    model; scenario resolution only needs the Section 7.2 boundaries.
    """
    if tier is None:
        return None
    if tier == "fast":
        return (MIN_HUMAN_INTERVAL_S, FAST_MAX_INTERVAL_S)
    if tier == "medium":
        return (FAST_MAX_INTERVAL_S, MEDIUM_MAX_INTERVAL_S)
    if tier == "slow":
        return (MEDIUM_MAX_INTERVAL_S, 2.5)
    raise ValueError(f"unknown speed tier {tier!r}; use fast/medium/slow")


def interval_range_for_scenario(scenario) -> Optional[Tuple[float, float]]:
    """The interval clamp a :class:`~repro.scenarios.Scenario` imposes."""
    return speed_tier_range(scenario.speed_tier)
