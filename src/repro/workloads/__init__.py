"""Workload generation: typing models, credentials, behavior scripts."""
