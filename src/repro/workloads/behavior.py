"""User behavior scripts: from clean typing to messy practical sessions.

Three tiers of realism, matching the paper's experiments:

* :func:`typing_events` — clean credential entry (Section 7.1 experiments);
* :func:`typing_with_corrections` — typos corrected with backspace
  (Section 5.3);
* :func:`practical_session` — the Section 8 usage sessions: 3 minutes of
  typing over several apps with random app switches, corrections,
  notification-bar views and free use of other apps (Fig 27).

All functions return event lists for :meth:`VictimDevice.compile`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.android.events import (
    AppSwitchAway,
    AppSwitchBack,
    BackspacePress,
    KeyPress,
    NotificationArrival,
    UserEvent,
    ViewNotificationShade,
)
from repro.workloads.credentials import PASSWORD_POOL, random_credential
from repro.workloads.typing_model import TypingModel


def typing_events(
    text: str,
    typing: TypingModel,
    start_s: float = 0.5,
    speed_tier: Optional[str] = None,
) -> List[UserEvent]:
    """Clean entry of ``text``: one KeyPress per character."""
    interval_range = typing.speed_tier_range(speed_tier) if speed_tier else None
    timings = typing.timings(len(text), start_s=start_s, interval_range=interval_range)
    return [
        KeyPress(t=timing.start_s, char=char, duration=timing.duration_s)
        for char, timing in zip(text, timings)
    ]


def typing_with_corrections(
    text: str,
    typing: TypingModel,
    rng: np.random.Generator,
    start_s: float = 0.5,
    typo_prob: float = 0.08,
    pool: str = PASSWORD_POOL,
) -> Tuple[List[UserEvent], str]:
    """Entry of ``text`` with occasional typos corrected by backspace.

    Returns the event list and the final text (== ``text``: every typo is
    corrected).  Mirrors Section 5.3's input-correction behaviour.
    """
    events: List[UserEvent] = []
    t = start_s
    for char in text:
        if rng.random() < typo_prob:
            wrong = pool[int(rng.integers(len(pool)))]
            duration = typing.profiles[0].sample_duration(rng)
            events.append(KeyPress(t=t, char=wrong, duration=duration))
            t += max(0.35, float(rng.normal(0.5, 0.1)))  # noticing the typo
            events.append(BackspacePress(t=t))
            t += max(0.15, float(rng.normal(0.3, 0.08)))
        duration = typing.profiles[0].sample_duration(rng)
        events.append(KeyPress(t=t, char=char, duration=duration))
        t += typing.profiles[0].sample_interval(rng)
    return events, text


@dataclass
class PracticalSession:
    """A Section 8 usage session with its scoring ground truth."""

    events: List[UserEvent]
    credential: str
    duration_s: float
    volunteer: str
    switches: int = 0
    corrections: int = 0
    shade_views: int = 0


def practical_session(
    rng: np.random.Generator,
    typing: TypingModel,
    volunteer_index: int = 0,
    duration_s: float = 180.0,
    credential: Optional[str] = None,
    switch_rate_hz: float = 1.0 / 25.0,
    shade_rate_hz: float = 1.0 / 45.0,
    typo_prob: float = 0.07,
    notification_rate_hz: float = 1.0 / 30.0,
) -> PracticalSession:
    """One 3-minute practical session (Section 8).

    The volunteer types a credential in the target app, occasionally makes
    corrections, randomly switches to other apps and comes back, views the
    notification bar, and receives background notifications.
    """
    profile = typing.profiles[volunteer_index % len(typing.profiles)]
    if credential is None:
        credential = random_credential(rng)

    events: List[UserEvent] = []
    session = PracticalSession(
        events=events,
        credential=credential,
        duration_s=duration_s,
        volunteer=profile.name,
    )

    final_chars: List[str] = []
    t = 1.0
    index = 0
    away_until: Optional[float] = None

    while index < len(credential) and t < duration_s - 8.0:
        roll = rng.random()
        if roll < switch_rate_hz * 4.0 and away_until is None and index > 0:
            # wander off to another app for a while, then come back
            events.append(AppSwitchAway(t=t))
            away = float(rng.uniform(3.0, 12.0))
            events.append(AppSwitchBack(t=t + away))
            session.switches += 1
            t += away + 1.2
            continue
        if roll < (switch_rate_hz + shade_rate_hz) * 4.0:
            events.append(ViewNotificationShade(t=t))
            session.shade_views += 1
            t += float(rng.uniform(1.5, 3.0))
            continue

        char = credential[index]
        if rng.random() < typo_prob:
            wrong = PASSWORD_POOL[int(rng.integers(len(PASSWORD_POOL)))]
            events.append(KeyPress(t=t, char=wrong, duration=profile.sample_duration(rng)))
            t += max(0.35, float(rng.normal(0.55, 0.12)))
            events.append(BackspacePress(t=t))
            session.corrections += 1
            t += max(0.15, float(rng.normal(0.3, 0.08)))
        events.append(KeyPress(t=t, char=char, duration=profile.sample_duration(rng)))
        final_chars.append(char)
        index += 1
        t += profile.sample_interval(rng)

    # free use of other apps for the remainder of the session
    if t < duration_s - 2.0:
        events.append(AppSwitchAway(t=t + 0.8))
        events.append(AppSwitchBack(t=duration_s - 1.0))
        session.switches += 1

    # background notifications arrive throughout
    notif_t = float(rng.exponential(1.0 / notification_rate_hz))
    while notif_t < duration_s:
        events.append(NotificationArrival(t=notif_t))
        notif_t += float(rng.exponential(1.0 / notification_rate_hz))

    session.credential = "".join(final_chars)
    return session


def bot_key_sweep(
    chars: Sequence[str],
    repeats: int,
    interval_s: float = 0.5,
    duration_s: float = 0.08,
    start_s: float = 0.5,
) -> List[UserEvent]:
    """The offline-phase bot: emulate each key ``repeats`` times at a fixed
    cadence, the way the paper's Termux bot injects input events
    (Section 6: Offline Phase)."""
    events: List[UserEvent] = []
    t = start_s
    for _ in range(repeats):
        for char in chars:
            events.append(KeyPress(t=t, char=char, duration=duration_s))
            t += interval_s
    return events


def noise_only_events(
    rng: np.random.Generator, duration_s: float, notification_rate_hz: float = 0.1
) -> List[UserEvent]:
    """No typing at all — used to collect the noise class offline."""
    events: List[UserEvent] = []
    t = float(rng.exponential(1.0 / notification_rate_hz))
    while t < duration_s:
        events.append(NotificationArrival(t=t))
        t += float(rng.exponential(1.0 / notification_rate_hz))
    return events


def scenario_typing_events(
    scenario,
    text: str,
    typing: TypingModel,
    start_s: float = 0.5,
) -> List[UserEvent]:
    """Clean entry of ``text`` under a scenario's typing-speed tier.

    The scenario-resolved counterpart of :func:`typing_events`: the
    interval clamp comes from ``scenario.speed_tier`` instead of a
    caller-supplied tier name.
    """
    return typing_events(text, typing, start_s=start_s, speed_tier=scenario.speed_tier)
