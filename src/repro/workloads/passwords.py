"""Realistic (non-uniform) credential generation.

The Section 7 experiments use uniform random texts; real users type
structured passwords (a word, some capitalization, digits, a trailing
symbol).  The side channel couldn't care less about structure — but the
*evaluation* should check that, so this module generates credentials
following common composition patterns for a realism bench.
"""

from __future__ import annotations

from typing import List

import numpy as np

#: Common base words (no real-world password corpus is shipped; these are
#: generic dictionary words of the kind composition studies report).
_WORDS = (
    "dragon", "monkey", "sunshine", "football", "princess", "shadow",
    "master", "flower", "summer", "silver", "purple", "ginger",
    "welcome", "freedom", "whatever", "banana", "coffee", "winter",
)

_LEET = {"a": "@", "e": "3", "i": "1", "o": "0", "s": "$"}

_SYMBOLS = "!?#$&-+"


def pattern_password(rng: np.random.Generator, min_len: int = 8, max_len: int = 16) -> str:
    """One password following a common composition pattern.

    word [+ word] + digits [+ symbol], with optional capitalization and
    leet substitutions — clipped into the paper's 8-16 length band.
    """
    word = _WORDS[int(rng.integers(len(_WORDS)))]
    if rng.random() < 0.3:
        word += _WORDS[int(rng.integers(len(_WORDS)))]
    chars = list(word)
    if rng.random() < 0.6:
        chars[0] = chars[0].upper()
    if rng.random() < 0.35:
        for i, c in enumerate(chars):
            if c in _LEET and rng.random() < 0.5:
                chars[i] = _LEET[c]
    password = "".join(chars)
    digits = str(int(rng.integers(0, 10000)))
    password += digits
    if rng.random() < 0.5:
        password += _SYMBOLS[int(rng.integers(len(_SYMBOLS)))]
    # clip into the experiment band
    if len(password) > max_len:
        password = password[:max_len]
    while len(password) < min_len:
        password += str(int(rng.integers(10)))
    return password


def pattern_password_batch(
    rng: np.random.Generator, count: int, min_len: int = 8, max_len: int = 16
) -> List[str]:
    """A batch of structured passwords."""
    return [pattern_password(rng, min_len, max_len) for _ in range(count)]


def pin(rng: np.random.Generator, digits: int = 6) -> str:
    """A numeric PIN (banking apps often use these)."""
    if digits < 1:
        raise ValueError("digits must be positive")
    return "".join(str(int(rng.integers(10))) for _ in range(digits))
