"""Background CPU/GPU workload generators (paper Section 7.3).

The paper emulates concurrent load with (a) a multi-threaded process
occupying all CPU cores at a target percentage and (b) a custom OpenGL ES
program rendering 3D objects in the background.  Here:

* CPU load is a :class:`~repro.kgsl.sampler.SystemLoad` parameter the
  sampler consumes (it delays/drops counter reads);
* GPU load is an actual frame stream added to the render timeline —
  the background renderer both pollutes the global counters and occupies
  the GPU, stretching the victim app's render times.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.android.display import Display
from repro.android.geometry import Rect
from repro.android.layers import DrawOp, Layer, Scene
from repro.gpu.pipeline import AdrenoPipeline, FrameStats
from repro.gpu.timeline import RenderTimeline, merge_timelines
from repro.gpu.adreno import AdrenoSpec


class BackgroundRenderer:
    """An off-screen 3D workload rendering at a duty cycle.

    ``gpu_utilization`` is the fraction of each vsync interval the
    background render occupies, matching the paper's
    ``gpu_busy_percentage`` knob (footnote 10).
    """

    def __init__(
        self,
        gpu: AdrenoSpec,
        display: Display,
        gpu_utilization: float,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 <= gpu_utilization <= 1.0:
            raise ValueError("gpu_utilization must be in [0, 1]")
        self.gpu = gpu
        self.display = display
        self.gpu_utilization = gpu_utilization
        self.rng = rng if rng is not None else np.random.default_rng(1)
        self.pipeline = AdrenoPipeline(gpu)

    #: Pixels rasterized per background frame as seen by the *binning*
    #: counters.  A background app renders to a small offscreen surface,
    #: which Adreno draws in direct mode — bypassing the LRZ pass and most
    #: of the binning-stage events the selected counters measure — and a
    #: shader/ALU-bound workload occupies GPU *time* far beyond its
    #: geometry footprint.  The duty cycle therefore sets the frame's
    #: render time (contention), while its counter contamination stays at
    #: cursor-blink scale.
    FRAME_PIXELS = 4_000
    #: Triangles per background frame visible to the VPC counters.
    FRAME_PRIMITIVES = 12

    def _frame_scene(self, phase: int) -> Scene:
        """One frame of a looping 3D animation.

        The same object rotates frame over frame, so per-frame counter
        increments are nearly constant with a small periodic modulation —
        exactly the stable signature a real looping benchmark produces.
        """
        screen = self.display.resolution
        modulation = 1.0 + 0.03 * np.sin(2.0 * np.pi * (phase % 90) / 90.0)
        pixels = int(self.FRAME_PIXELS * modulation)
        width = int(min(screen.width * 0.6, max(64, pixels**0.5)))
        height = max(64, pixels // width)
        layer = Layer("bg_3d")
        layer.add(
            DrawOp(
                rect=Rect.from_size(
                    screen.width // 8, screen.height // 3, width, height
                ),
                coverage=0.92,
                primitives=self.FRAME_PRIMITIVES + (phase % 7),
                textured=True,
                label=f"bg_mesh_{phase % 90}",
            )
        )
        return Scene([layer])

    def timeline(self, t0: float, t1: float) -> RenderTimeline:
        """Background frames at every vsync over ``[t0, t1)``.

        Each frame's render *time* equals the duty cycle's share of the
        frame interval (the workload is shader-bound), which is what makes
        the victim's frames queue behind it and stretch.
        """
        timeline = RenderTimeline()
        if self.gpu_utilization <= 0.0:
            return timeline
        interval = self.display.frame_interval_s
        t = self.display.next_vsync(t0)
        phase = 0
        busy_s = interval * self.gpu_utilization
        while t < t1:
            stats = self.pipeline.render(self._frame_scene(phase))
            stats = FrameStats(
                increment=stats.increment,
                pixels_touched=stats.pixels_touched,
                render_time_s=max(stats.render_time_s, busy_s),
            )
            timeline.add_render(t, stats, label="background_3d")
            t += interval
            phase += 1
        return timeline


def render_slowdown(gpu_utilization: float) -> float:
    """How much background GPU occupancy stretches victim frame renders.

    A simple M/D/1-style queueing dilation: at 75 % background occupancy
    the victim's frames take ~3x longer to complete, widening the window
    in which counter reads split.
    """
    if not 0.0 <= gpu_utilization <= 1.0:
        raise ValueError("gpu_utilization must be in [0, 1]")
    capped = min(gpu_utilization, 0.92)
    return 1.0 / (1.0 - capped * 0.78)


def with_background_load(
    victim_timeline: RenderTimeline,
    gpu: AdrenoSpec,
    display: Display,
    gpu_utilization: float,
    t_end: float,
    rng: Optional[np.random.Generator] = None,
) -> RenderTimeline:
    """Victim timeline merged with a background GPU workload."""
    if gpu_utilization <= 0.0:
        return victim_timeline
    renderer = BackgroundRenderer(gpu, display, gpu_utilization, rng=rng)
    return merge_timelines([victim_timeline, renderer.timeline(0.0, t_end)])
