"""Random credential generation for experiments.

The paper emulates "random texts" of length 8-16 for usernames and
passwords (Section 7.1).  Character pools follow what login forms accept;
the full pool matches the keyboard character set of Fig 18 so the per-key
accuracy sweep covers every key.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.android.glyphs import KEYBOARD_CHARACTERS

LOWERCASE = "abcdefghijklmnopqrstuvwxyz"
UPPERCASE = LOWERCASE.upper()
DIGITS = "1234567890"
SYMBOLS = "@#$&-+()/*\"':;!?,."

#: Pool resembling realistic credentials: mostly lowercase, some digits.
USERNAME_POOL = LOWERCASE + DIGITS + "."
#: Password pool: the full Fig 18 keyboard character set.
PASSWORD_POOL = KEYBOARD_CHARACTERS

MIN_CREDENTIAL_LEN = 8
MAX_CREDENTIAL_LEN = 16


def random_text(
    rng: np.random.Generator,
    length: int,
    pool: str = PASSWORD_POOL,
) -> str:
    """A uniform random string over ``pool``."""
    if length <= 0:
        raise ValueError("length must be positive")
    indices = rng.integers(0, len(pool), size=length)
    return "".join(pool[i] for i in indices)


def random_credential(
    rng: np.random.Generator,
    length: Optional[int] = None,
    pool: str = PASSWORD_POOL,
) -> str:
    """A credential of the paper's length range 8-16 (inclusive)."""
    if length is None:
        length = int(rng.integers(MIN_CREDENTIAL_LEN, MAX_CREDENTIAL_LEN + 1))
    if not MIN_CREDENTIAL_LEN <= length <= MAX_CREDENTIAL_LEN:
        raise ValueError(
            f"credential length must be in [{MIN_CREDENTIAL_LEN}, {MAX_CREDENTIAL_LEN}]"
        )
    return random_text(rng, length, pool)


def credential_batch(
    rng: np.random.Generator,
    count: int,
    length: Optional[int] = None,
    pool: str = PASSWORD_POOL,
) -> List[str]:
    """``count`` random credentials, as in '300 random texts per length'."""
    return [random_credential(rng, length=length, pool=pool) for _ in range(count)]


def character_group(char: str) -> str:
    """The Fig 17(c) grouping: lower / upper / number / symbol."""
    if char in LOWERCASE:
        return "lower"
    if char in UPPERCASE:
        return "upper"
    if char in DIGITS:
        return "number"
    return "symbol"


def balanced_character_stream(rng: np.random.Generator, repeats: int) -> List[str]:
    """Every Fig 18 character exactly ``repeats`` times, shuffled —
    used for per-key accuracy sweeps so rare symbols get equal coverage."""
    chars: List[str] = [c for c in KEYBOARD_CHARACTERS for _ in range(repeats)]
    order = rng.permutation(len(chars))
    return [chars[i] for i in order]


def pool_for_keyboard(spec, display=None) -> str:
    """Every PASSWORD_POOL character with a key on ``spec``'s layout.

    This is the scenario-resolved replacement for assuming the global
    Fig 18 pool: a qwerty keyboard returns the full pool, the PIN pad
    only its ten digits.  Mirrors the filter offline training applies
    (``OfflineTrainer.trainable_characters``).
    """
    from repro.android.display import Display
    from repro.android.keyboard import KeyboardLayout

    layout = KeyboardLayout(spec, display if display is not None else Display())
    return "".join(c for c in PASSWORD_POOL if layout.has_key(c))


def pool_for_scenario(scenario) -> str:
    """The credential pool a :class:`~repro.scenarios.Scenario` draws
    from: its explicit charset, else the keyboard-filtered pool."""
    return scenario.credential_pool()


def scenario_credential(
    rng: np.random.Generator,
    scenario,
    length: Optional[int] = None,
) -> str:
    """A random credential over the scenario's pool (paper lengths 8-16)."""
    return random_credential(rng, length=length, pool=pool_for_scenario(scenario))
