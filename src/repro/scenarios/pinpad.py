"""A 10-digit PIN-pad scenario — the registry's extensibility proof.

Related work extends the popup side channel past qwerty text entry to
numeric PIN pads (activity/PIN inference via GPU profiling in AR/VR;
see PAPERS.md), and banking apps commonly gate re-login behind a PIN
screen.  This module registers that workload *entirely from outside the
core tables*: nothing in ``repro.android.keyboard`` or
``repro.android.apps`` knows the PIN pad exists, yet after import it is
addressable everywhere a built-in keyboard is — ``repro steal
--keyboard pinpad``, ``AttackConfig(scenario="pinpad")``, the scenario
smoke matrix.

The keyboard uses the ``"pinpad"`` layout kind: a 3-wide digit grid
(1-9 over three rows, 0 bottom-center, backspace bottom-right) with its
own popup geometry — wider popups risen further, as banking PIN pads
draw them.  Only ten key classes exist, so offline training sweeps ten
keys and the classifier separates ten clusters (versus 38 on qwerty);
measured accuracy lives in EXPERIMENTS.md next to the Table 2 band.
"""

from __future__ import annotations

from repro.android.keyboard import KeyboardSpec, register_keyboard
from repro.scenarios.spec import Scenario, register_scenario

PINPAD = register_keyboard(
    KeyboardSpec(
        name="pinpad",
        display_name="Banking PIN Pad",
        height_fraction=0.38,
        key_gap_fraction=0.18,
        popup_scale=1.30,
        popup_rise_fraction=1.25,
        popup_font_fraction=0.60,
        label_font_fraction=0.46,
        duplicate_popup_prob=0.0,
        popup_shadow=True,
        layout="pinpad",
    ),
    tags=("extension", "numeric"),
)

PINPAD_SCENARIO = register_scenario(
    Scenario(
        name="pinpad",
        keyboard="pinpad",
        app="chase",
        charset="1234567890",
        description="10-digit banking PIN pad, digit-only credentials",
        tags=("extension", "pinpad"),
    )
)
