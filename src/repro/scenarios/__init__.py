"""First-class attack scenarios: named cells of the keyboard × app ×
workload matrix (see docs/scenarios.md).

Importing this package registers the paper's builtin matrix
(:mod:`repro.scenarios.builtin`), the PIN-pad extension
(:mod:`repro.scenarios.pinpad`), and any plugins named via the
``repro.scenarios`` entry-point group or ``REPRO_SCENARIO_MODULES``.
"""

from repro.scenarios.spec import (
    ENTRY_POINT_GROUP,
    SCENARIO_MODULES_ENV,
    SCENARIO_REGISTRY,
    SPEED_TIERS,
    Scenario,
    discover,
    register_scenario,
    scenario,
    scenario_names,
)

# Populate the registry: the paper matrix, the PIN-pad extension, then
# external plugins (entry points / environment).
from repro.scenarios import builtin as _builtin  # noqa: F401  (side effect)
from repro.scenarios import pinpad as _pinpad  # noqa: F401  (side effect)

discover()

__all__ = [
    "ENTRY_POINT_GROUP",
    "SCENARIO_MODULES_ENV",
    "SCENARIO_REGISTRY",
    "SPEED_TIERS",
    "Scenario",
    "discover",
    "register_scenario",
    "scenario",
    "scenario_names",
]
