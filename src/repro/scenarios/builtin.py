"""The paper's scenario matrix, registered declaratively.

Every cell the paper evaluates becomes a named scenario:

* ``{keyboard}-{app}`` — the Table 2 band: 6 keyboards (Fig 20) × 6
  native login apps (Fig 19), untiered typing, no faults;
* ``gboard-{site}`` — the three Chrome web targets (chase.com,
  schwab.com, experian.com) on the workhorse keyboard;
* ``gboard-pnc`` — the animated PNC login page, the natural obfuscation
  of Section 9.3;
* ``gboard-chase-{fast,medium,slow}`` — the Section 7.2 typing-speed
  tiers on the workhorse pair.

Importing this module populates :data:`~repro.scenarios.SCENARIO_REGISTRY`;
nothing here is consulted directly afterwards.
"""

from __future__ import annotations

from repro.android.apps import APP_REGISTRY
from repro.android.keyboard import KEYBOARDS
from repro.scenarios.spec import SPEED_TIERS, Scenario, register_scenario

#: Fig 20 keyboards in evaluation order (the KEYBOARDS snapshot order).
_MATRIX_KEYBOARDS = tuple(KEYBOARDS)
#: Fig 19 native apps in evaluation order.
_MATRIX_APPS = tuple(spec.name for spec in APP_REGISTRY.tagged("native"))
#: The three Chrome-rendered web targets.
_WEB_APPS = tuple(spec.name for spec in APP_REGISTRY.tagged("web"))

for _kb in _MATRIX_KEYBOARDS:
    for _app in _MATRIX_APPS:
        register_scenario(
            Scenario(
                name=f"{_kb}-{_app}",
                keyboard=_kb,
                app=_app,
                description=f"Table 2 cell: {_kb} keyboard typing into {_app}",
                tags=("paper", "matrix"),
            )
        )

for _site in _WEB_APPS:
    register_scenario(
        Scenario(
            name=f"gboard-{_site}",
            keyboard="gboard",
            app=_site,
            description=f"Web target {_site} rendered in Chrome (Fig 19)",
            tags=("paper", "web"),
        )
    )

register_scenario(
    Scenario(
        name="gboard-pnc",
        keyboard="gboard",
        app="pnc",
        description="PNC's animated login page, the Section 9.3 obfuscation",
        tags=("paper", "animated"),
    )
)

for _tier in SPEED_TIERS:
    register_scenario(
        Scenario(
            name=f"gboard-chase-{_tier}",
            keyboard="gboard",
            app="chase",
            speed_tier=_tier,
            description=f"Section 7.2 {_tier}-typist tier on the workhorse pair",
            tags=("paper", "tier"),
        )
    )
