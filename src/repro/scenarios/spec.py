"""The :class:`Scenario` spec and its registry.

A scenario is one cell of the attack matrix: *which keyboard* the victim
types on, *which app* they log into, on *which phone*, at *which typing
speed*, under *which fault profile*, over *which character set*.  The
paper's Table 2 evaluates 6 keyboards × 6 native login apps; PRs 4–5
built fleet machinery that could only ever re-run those same cells
because the matrix lived in hard-coded dicts.  This module makes the
cell itself a first-class, named, serializable object:

* :class:`Scenario` — a frozen spec naming its axes by registry string
  (``keyboard="gboard"``), resolved lazily through the keyboard / app /
  phone registries so registration order between producer modules never
  matters;
* :data:`SCENARIO_REGISTRY` — string-addressable lookup shared by the
  CLI (``repro scenarios``, ``--scenario``), the facade
  (:class:`repro.api.AttackConfig`'s ``scenario=`` field) and the
  workloads;
* :func:`register_scenario` — validating registration, usable from any
  module (see :mod:`repro.scenarios.pinpad` for an extension registered
  entirely outside the core tables);
* :func:`discover` — plugin-style discovery via the
  ``repro.scenarios`` entry-point group and the
  ``REPRO_SCENARIO_MODULES`` environment variable.
"""

from __future__ import annotations

import importlib
import os
from dataclasses import dataclass, fields
from typing import Dict, List, Mapping, Optional, Tuple

from repro.registry import Registry

#: The paper's Section 7.2 typing-speed tiers (``None`` = unconstrained).
SPEED_TIERS: Tuple[str, ...] = ("fast", "medium", "slow")

#: Environment variable naming extra scenario modules to import during
#: :func:`discover` (comma- or colon-separated dotted module paths).
SCENARIO_MODULES_ENV = "REPRO_SCENARIO_MODULES"

#: Entry-point group scanned by :func:`discover`.
ENTRY_POINT_GROUP = "repro.scenarios"


@dataclass(frozen=True)
class Scenario:
    """One named attack scenario.

    Axes are stored as registry *names*, not resolved spec objects, so a
    scenario serializes to a flat dict, survives pickling into worker
    processes, and never goes stale when a producer re-registers a spec.

    Attributes:
        name: registry name of the scenario itself.
        keyboard: keyboard registry name (``repro.android.keyboard``).
        app: target-app registry name (``repro.android.apps``).
        phone: phone registry name (``repro.android.os_config``).
        speed_tier: optional Section 7.2 tier (fast / medium / slow)
            constraining the victim's inter-key intervals.
        fault_profile: named fault profile (``repro.faults.PROFILES``)
            the scenario runs under by default.
        locale: BCP-47-ish locale tag, informational for now.
        charset: optional explicit credential character pool; defaults
            to every trainable character on the keyboard's layout.
        description: one-line human description.
        tags: registry tags (``paper``, ``web``, ``extension``, …).
    """

    name: str
    keyboard: str
    app: str
    phone: str = "oneplus8pro"
    speed_tier: Optional[str] = None
    fault_profile: str = "none"
    locale: str = "en_US"
    charset: Optional[str] = None
    description: str = ""
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("scenario name must be a non-empty string")
        if self.speed_tier is not None and self.speed_tier not in SPEED_TIERS:
            raise ValueError(
                f"unknown speed tier {self.speed_tier!r}; use one of {list(SPEED_TIERS)}"
            )
        if self.charset is not None and not self.charset:
            raise ValueError("charset must be None or a non-empty string")
        object.__setattr__(self, "tags", tuple(self.tags))

    # -- axis resolution (lazy, via the producer registries) -------------

    def keyboard_spec(self):
        from repro.android.keyboard import keyboard

        return keyboard(self.keyboard)

    def app_spec(self):
        from repro.android.apps import app

        return app(self.app)

    def phone_spec(self):
        from repro.android.os_config import phone

        return phone(self.phone)

    def device_config(self):
        """The :class:`~repro.android.os_config.DeviceConfig` this
        scenario attacks (phone defaults: resolution, refresh, OS)."""
        from repro.android.os_config import DeviceConfig

        return DeviceConfig(phone=self.phone_spec(), keyboard=self.keyboard_spec())

    def fault_plan(self, seed: int = 0):
        """The scenario's default :class:`~repro.faults.FaultPlan`."""
        from repro.faults import FaultPlan

        return FaultPlan.from_profile(self.fault_profile, seed=seed)

    def credential_pool(self) -> str:
        """Characters credentials draw from: the explicit charset, or
        every trainable character on the keyboard's layout."""
        if self.charset is not None:
            return self.charset
        from repro.workloads.credentials import pool_for_keyboard

        return pool_for_keyboard(self.keyboard_spec())

    def interval_range(self, typing_model) -> Optional[Tuple[float, float]]:
        """The tier's inter-key interval clamp, or ``None`` when the
        scenario leaves typing speed unconstrained."""
        if self.speed_tier is None:
            return None
        return typing_model.speed_tier_range(self.speed_tier)

    def compile_scene(self):
        """Build one damage-clipped key-press scene for this scenario.

        The cheapest full-stack exercise of the cell: resolves every
        axis, lays out the keyboard on the phone's display, and renders
        the popup scene for the first pool character.  Used by the
        registration validator, the CI smoke job and the hypothesis
        property that every registered scenario compiles.
        """
        from repro.android.scenes import SceneBuilder, UiState

        builder = SceneBuilder(self.device_config())
        pool = self.credential_pool()
        char = pool[0]
        state = UiState(app=self.app_spec()).with_popup(char)
        return builder.damage_scene(state, builder.popup_damage(char))

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            f.name: getattr(self, f.name) for f in fields(self)
        }
        out["tags"] = list(self.tags)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Scenario":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown Scenario fields: {sorted(unknown)}")
        return cls(**dict(data))  # type: ignore[arg-type]


#: The scenario registry: the source of truth for name → scenario lookup.
SCENARIO_REGISTRY: Registry[Scenario] = Registry("scenario")


def register_scenario(spec: Scenario, replace: bool = False) -> Scenario:
    """Validate and register a scenario.

    Validation resolves every axis through its registry (so a typo'd
    keyboard name fails at registration, not mid-attack), checks the
    fault profile exists, and checks every explicit charset character
    has a key on the keyboard's layout.
    """
    from repro.android.display import Display
    from repro.android.keyboard import KeyboardLayout
    from repro.faults import PROFILES

    keyboard_spec = spec.keyboard_spec()  # raises UnknownNameError on typos
    spec.app_spec()
    phone_spec = spec.phone_spec()
    if spec.fault_profile not in PROFILES:
        raise ValueError(
            f"scenario {spec.name!r}: unknown fault profile "
            f"{spec.fault_profile!r}; available: {sorted(PROFILES)}"
        )
    if spec.charset is not None:
        layout = KeyboardLayout(
            keyboard_spec, Display(resolution=phone_spec.resolution)
        )
        missing = sorted({c for c in spec.charset if not layout.has_key(c)})
        if missing:
            raise ValueError(
                f"scenario {spec.name!r}: charset characters {missing!r} "
                f"have no key on keyboard {spec.keyboard!r}"
            )
    return SCENARIO_REGISTRY.register(spec, tags=spec.tags, replace=replace)


def scenario(name: str) -> Scenario:
    """Resolve a scenario by registry name.

    Raises:
        repro.registry.UnknownNameError: (a ``KeyError``) for unknown
            names, with the known set and a closest-match suggestion.
    """
    return SCENARIO_REGISTRY.get(name)


def scenario_names() -> List[str]:
    """All registered scenario names, sorted."""
    return SCENARIO_REGISTRY.names()


def discover() -> List[str]:
    """Import scenario plugins; returns the modules imported.

    Two discovery channels, both optional:

    * dotted module paths in the ``REPRO_SCENARIO_MODULES`` environment
      variable (comma- or colon-separated) — importing a module runs its
      ``register_scenario`` calls;
    * installed-package entry points in the ``repro.scenarios`` group.

    Import errors propagate: a broken plugin should fail loudly at
    discovery, not surface later as an unknown-name error.
    """
    imported: List[str] = []
    raw = os.environ.get(SCENARIO_MODULES_ENV, "")
    for chunk in raw.replace(",", ":").split(":"):
        module = chunk.strip()
        if module:
            importlib.import_module(module)
            imported.append(module)
    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - py<3.8 fallback, not shipped
        return imported
    try:
        eps = entry_points(group=ENTRY_POINT_GROUP)  # py3.10+
    except TypeError:  # pragma: no cover - py3.9 API
        eps = entry_points().get(ENTRY_POINT_GROUP, ())  # type: ignore[attr-defined]
    for ep in eps:
        ep.load()
        imported.append(ep.value)
    return imported
