"""Cumulative counter values over time: the render timeline.

A :class:`RenderTimeline` is the ordered list of frame renders executed by
the GPU during a session.  Each frame starts at a wall-clock time and takes
``render_time_s`` to complete; its counter increments accrue *linearly over
the render interval*.  This is the mechanism behind the paper's *split*
readings (Section 5.1): "if a PC is being read when the GPU is in the
process of drawing the key press popup, the change of this PC could be
split into multiple consecutive changes with smaller amounts".

Queries are O(log n + k) via per-counter prefix sums, where k is the small
number of frames still in flight at the query time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.gpu import counters as pc
from repro.gpu.pipeline import FrameStats

#: Stable column order for the 11 selected counters.
COUNTER_ORDER: List[pc.CounterId] = [spec.counter_id for spec in pc.SELECTED_COUNTERS]
_COLUMN: Dict[pc.CounterId, int] = {cid: i for i, cid in enumerate(COUNTER_ORDER)}


@dataclass(frozen=True)
class FrameRender:
    """One frame render scheduled on the GPU."""

    start_s: float
    stats: FrameStats
    label: str = ""

    @property
    def end_s(self) -> float:
        return self.start_s + self.stats.render_time_s

    def progress(self, t: float) -> float:
        """Fraction of this frame's increments accrued by time ``t``."""
        if t <= self.start_s:
            return 0.0
        if t >= self.end_s:
            return 1.0
        duration = self.stats.render_time_s
        if duration <= 0:
            return 1.0
        return (t - self.start_s) / duration


class RenderTimeline:
    """Ordered frame renders with fast cumulative-counter queries."""

    def __init__(self) -> None:
        self._frames: List[FrameRender] = []
        self._sorted = True
        self._starts: Optional[np.ndarray] = None
        self._prefix: Optional[np.ndarray] = None
        self._max_duration = 0.0

    def add(self, frame: FrameRender) -> None:
        if self._frames and frame.start_s < self._frames[-1].start_s:
            self._sorted = False
        self._frames.append(frame)
        self._starts = None

    def add_render(self, start_s: float, stats: FrameStats, label: str = "") -> FrameRender:
        frame = FrameRender(start_s=start_s, stats=stats, label=label)
        self.add(frame)
        return frame

    @property
    def frames(self) -> List[FrameRender]:
        self._ensure_index()
        return self._frames

    @property
    def end_time_s(self) -> float:
        if not self._frames:
            return 0.0
        return max(f.end_s for f in self._frames)

    def _ensure_index(self) -> None:
        if self._starts is not None:
            return
        if not self._sorted:
            self._frames.sort(key=lambda f: f.start_s)
            self._sorted = True
        n = len(self._frames)
        self._starts = np.array([f.start_s for f in self._frames], dtype=float)
        matrix = np.zeros((n, len(COUNTER_ORDER)), dtype=np.int64)
        for i, frame in enumerate(self._frames):
            for cid, amount in frame.stats.increment.values.items():
                matrix[i, _COLUMN[cid]] = amount
        self._prefix = np.vstack(
            [np.zeros((1, len(COUNTER_ORDER)), dtype=np.int64), np.cumsum(matrix, axis=0)]
        )
        self._max_duration = max(
            (f.stats.render_time_s for f in self._frames), default=0.0
        )

    def values_at(self, t: float) -> Dict[pc.CounterId, int]:
        """Cumulative counter values at wall-clock time ``t`` (seconds)."""
        self._ensure_index()
        if not self._frames:
            return {cid: 0 for cid in COUNTER_ORDER}
        assert self._starts is not None and self._prefix is not None
        # Frames started strictly before t contribute; later ones do not.
        idx = int(np.searchsorted(self._starts, t, side="right"))
        totals = self._prefix[idx].copy()
        # Subtract the unaccrued share of frames still in flight.  Only
        # frames started within max_duration of t can be unfinished.
        window_start = t - self._max_duration - 1e-12
        first = int(np.searchsorted(self._starts, window_start, side="left"))
        for i in range(first, idx):
            frame = self._frames[i]
            progress = frame.progress(t)
            if progress >= 1.0:
                continue
            for cid, amount in frame.stats.increment.values.items():
                accrued = int(round(amount * progress))
                totals[_COLUMN[cid]] -= amount - accrued
        return {cid: int(totals[_COLUMN[cid]]) for cid in COUNTER_ORDER}

    def frames_between(self, t0: float, t1: float) -> List[FrameRender]:
        """Frames starting in ``[t0, t1)`` — for trace inspection."""
        self._ensure_index()
        assert self._starts is not None
        lo = int(np.searchsorted(self._starts, t0, side="left"))
        hi = int(np.searchsorted(self._starts, t1, side="left"))
        return self._frames[lo:hi]

    def busy_fraction(self, t0: float, t1: float) -> float:
        """Fraction of ``[t0, t1)`` the GPU spends rendering.

        Used by the contention model and exposed to the victim OS the way
        Android exposes ``gpu_busy_percentage`` (paper footnote 10).
        """
        if t1 <= t0:
            return 0.0
        busy = 0.0
        for frame in self.frames_between(t0 - self._max_duration, t1):
            start = max(t0, frame.start_s)
            end = min(t1, frame.end_s)
            if end > start:
                busy += end - start
        return min(1.0, busy / (t1 - t0))


def merge_timelines(timelines: List[RenderTimeline]) -> RenderTimeline:
    """Combine several timelines (e.g. app rendering + background GPU load)."""
    merged = RenderTimeline()
    all_frames: List[FrameRender] = []
    for timeline in timelines:
        all_frames.extend(timeline.frames)
    for frame in sorted(all_frames, key=lambda f: f.start_s):
        merged.add(frame)
    return merged
