"""Qualcomm Adreno GPU model: tiled renderer and performance counters."""
