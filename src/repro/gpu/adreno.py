"""Qualcomm Adreno GPU hardware specifications.

The paper evaluates Adreno 540, 640, 650 and 660 (Fig 24a).  What the
side channel needs from the hardware model is:

* the binning (supertile) geometry — Adreno splits the render target into
  equally sized tiles "automatically determined by the GPU hardware"
  (Section 2.1); tile geometry scales the tile-count counters, which is why
  a classification model is trained per device model;
* fill rate and per-frame overhead — these set how long a frame takes to
  render, which is what causes *split* counter readings when the sampler
  fires mid-render (Section 5.1);
* a power draw figure for the battery-overhead experiment (Fig 26).

Numbers are representative of the real parts (Snapdragon 835/855/865/888
generations) but only their relative ordering matters for the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Fine-grained tile geometry fixed across the Adreno family: the LRZ pass
#: works on 8x8 pixel blocks and the rasterizer on 8x4 pixel blocks.  These
#: appear directly in the counter names of the paper's Table 1.
LRZ_BLOCK: Tuple[int, int] = (8, 8)
RAS_BLOCK: Tuple[int, int] = (8, 4)


@dataclass(frozen=True)
class AdrenoSpec:
    """Static description of one Adreno GPU model."""

    model: int
    name: str
    supertile: Tuple[int, int]
    fill_rate_gpix_s: float
    frame_overhead_us: float
    clock_mhz: int
    sample_power_mw: float

    @property
    def supertile_w(self) -> int:
        return self.supertile[0]

    @property
    def supertile_h(self) -> int:
        return self.supertile[1]

    def render_time_s(self, pixels: int) -> float:
        """Wall-clock time to render a frame touching ``pixels`` fragments."""
        fill = self.fill_rate_gpix_s * 1e9
        return self.frame_overhead_us * 1e-6 + pixels / fill

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


ADRENO_540 = AdrenoSpec(
    model=540,
    name="Adreno 540",
    supertile=(32, 32),
    fill_rate_gpix_s=7.5,
    frame_overhead_us=780.0,
    clock_mhz=710,
    sample_power_mw=120.0,
)

ADRENO_640 = AdrenoSpec(
    model=640,
    name="Adreno 640",
    supertile=(48, 32),
    fill_rate_gpix_s=9.8,
    frame_overhead_us=700.0,
    clock_mhz=585,
    sample_power_mw=85.0,
)

ADRENO_650 = AdrenoSpec(
    model=650,
    name="Adreno 650",
    supertile=(64, 32),
    fill_rate_gpix_s=12.0,
    frame_overhead_us=640.0,
    clock_mhz=587,
    sample_power_mw=95.0,
)

ADRENO_660 = AdrenoSpec(
    model=660,
    name="Adreno 660",
    supertile=(64, 64),
    fill_rate_gpix_s=14.1,
    frame_overhead_us=580.0,
    clock_mhz=840,
    sample_power_mw=90.0,
)

#: All GPU models evaluated in the paper, keyed by the marketing number.
ADRENO_MODELS: Dict[int, AdrenoSpec] = {
    spec.model: spec for spec in (ADRENO_540, ADRENO_640, ADRENO_650, ADRENO_660)
}


def adreno(model: int) -> AdrenoSpec:
    """Look up an Adreno spec by model number (e.g. ``650``)."""
    try:
        return ADRENO_MODELS[model]
    except KeyError:
        raise KeyError(
            f"unknown Adreno model {model}; known: {sorted(ADRENO_MODELS)}"
        ) from None
