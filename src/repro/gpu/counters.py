"""Adreno GPU performance counter registers (paper Table 1).

Performance counters are cumulative hardware registers grouped by pipeline
stage.  The attack uses 11 counters from three groups related to overdraw
(Section 2.2): Low Resolution Z (LRZ), Rasterization (RAS) and Vertex
Cache (VPC).  Group IDs match the KGSL driver header ``msm_kgsl.h``
reproduced in the paper's Fig 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, Iterator, List, Mapping, Tuple


class CounterGroup(IntEnum):
    """KGSL performance counter group IDs (msm_kgsl.h)."""

    VPC = 0x5
    RAS = 0x7
    LRZ = 0x19


#: (group, countable) pair uniquely identifying a hardware counter register.
CounterId = Tuple[CounterGroup, int]


@dataclass(frozen=True)
class CounterSpec:
    """One performance counter register from the paper's Table 1."""

    group: CounterGroup
    countable: int
    name: str

    @property
    def counter_id(self) -> CounterId:
        return (self.group, self.countable)


# Table 1 of the paper: the 11 PCs used for eavesdropping.
LRZ_VISIBLE_PRIM_AFTER_LRZ = CounterSpec(CounterGroup.LRZ, 13, "PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ")
LRZ_FULL_8X8_TILES = CounterSpec(CounterGroup.LRZ, 14, "PERF_LRZ_FULL_8X8_TILES")
LRZ_PARTIAL_8X8_TILES = CounterSpec(CounterGroup.LRZ, 15, "PERF_LRZ_PARTIAL_8X8_TILES")
LRZ_VISIBLE_PIXEL_AFTER_LRZ = CounterSpec(CounterGroup.LRZ, 18, "PERF_LRZ_VISIBLE_PIXEL_AFTER_LRZ")
RAS_SUPERTILE_ACTIVE_CYCLES = CounterSpec(CounterGroup.RAS, 1, "PERF_RAS_SUPERTILE_ACTIVE_CYCLES")
RAS_SUPER_TILES = CounterSpec(CounterGroup.RAS, 4, "PERF_RAS_SUPER_TILES")
RAS_8X4_TILES = CounterSpec(CounterGroup.RAS, 5, "PERF_RAS_8X4_TILES")
RAS_FULLY_COVERED_8X4_TILES = CounterSpec(CounterGroup.RAS, 8, "PERF_RAS_FULLY_COVERED_8X4_TILES")
VPC_PC_PRIMITIVES = CounterSpec(CounterGroup.VPC, 9, "PERF_VPC_PC_PRIMITIVES")
VPC_SP_COMPONENTS = CounterSpec(CounterGroup.VPC, 10, "PERF_VPC_SP_COMPONENTS")
VPC_LRZ_ASSIGN_PRIMITIVES = CounterSpec(CounterGroup.VPC, 12, "PERF_VPC_LRZ_ASSIGN_PRIMITIVES")

#: All counters selected for eavesdropping, in Table 1 order.
SELECTED_COUNTERS: List[CounterSpec] = [
    LRZ_VISIBLE_PRIM_AFTER_LRZ,
    LRZ_FULL_8X8_TILES,
    LRZ_PARTIAL_8X8_TILES,
    LRZ_VISIBLE_PIXEL_AFTER_LRZ,
    RAS_SUPERTILE_ACTIVE_CYCLES,
    RAS_SUPER_TILES,
    RAS_8X4_TILES,
    RAS_FULLY_COVERED_8X4_TILES,
    VPC_PC_PRIMITIVES,
    VPC_SP_COMPONENTS,
    VPC_LRZ_ASSIGN_PRIMITIVES,
]

#: Lookup from counter id to spec.
COUNTERS_BY_ID: Dict[CounterId, CounterSpec] = {
    spec.counter_id: spec for spec in SELECTED_COUNTERS
}

#: Lookup from string identifier (as returned by the AMD_performance_monitor
#: extension, Section 3.3) to spec.
COUNTERS_BY_NAME: Dict[str, CounterSpec] = {spec.name: spec for spec in SELECTED_COUNTERS}


def counter_by_name(name: str) -> CounterSpec:
    try:
        return COUNTERS_BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown counter {name!r}") from None


@dataclass
class CounterIncrement:
    """Per-counter increments produced by rendering one frame."""

    values: Dict[CounterId, int] = field(default_factory=dict)

    def add(self, spec: CounterSpec, amount: int) -> None:
        if amount < 0:
            raise ValueError(f"counter increments are non-negative, got {amount}")
        if amount:
            self.values[spec.counter_id] = self.values.get(spec.counter_id, 0) + amount

    def get(self, spec: CounterSpec) -> int:
        return self.values.get(spec.counter_id, 0)

    def merge(self, other: "CounterIncrement") -> "CounterIncrement":
        merged = CounterIncrement(values=dict(self.values))
        for counter_id, amount in other.values.items():
            merged.values[counter_id] = merged.values.get(counter_id, 0) + amount
        return merged

    def scaled(self, factor: float) -> "CounterIncrement":
        """Increment scaled by ``factor`` (used for partial-frame reads)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return CounterIncrement(
            values={cid: int(round(v * factor)) for cid, v in self.values.items()}
        )

    @property
    def total(self) -> int:
        return sum(self.values.values())

    def __bool__(self) -> bool:
        return any(self.values.values())


class CounterBank:
    """The cumulative hardware counter registers of one GPU.

    Registers saturate at 2**48 and wrap, like real free-running hardware
    counters; the attack computes deltas so wrapping is transparent as long
    as at most one wrap happens between reads.
    """

    WRAP = 1 << 48

    def __init__(self) -> None:
        self._values: Dict[CounterId, int] = {
            spec.counter_id: 0 for spec in SELECTED_COUNTERS
        }

    def apply(self, increment: CounterIncrement) -> None:
        for counter_id, amount in increment.values.items():
            if counter_id not in self._values:
                raise KeyError(f"unknown counter id {counter_id}")
            self._values[counter_id] = (self._values[counter_id] + amount) % self.WRAP

    def read(self, spec: CounterSpec) -> int:
        return self._values[spec.counter_id]

    def read_id(self, counter_id: CounterId) -> int:
        return self._values[counter_id]

    def snapshot(self) -> Dict[CounterId, int]:
        return dict(self._values)

    def load(self, values: Mapping[CounterId, int]) -> None:
        for counter_id, value in values.items():
            if counter_id not in self._values:
                raise KeyError(f"unknown counter id {counter_id}")
            self._values[counter_id] = value % self.WRAP

    def __iter__(self) -> Iterator[Tuple[CounterId, int]]:
        return iter(self._values.items())


def delta(before: Mapping[CounterId, int], after: Mapping[CounterId, int]) -> Dict[CounterId, int]:
    """Per-counter difference between two snapshots, handling wraparound."""
    out: Dict[CounterId, int] = {}
    for counter_id, end in after.items():
        start = before.get(counter_id, 0)
        diff = end - start
        if diff < 0:
            diff += CounterBank.WRAP
        out[counter_id] = diff
    return out
