"""Adreno tile-based rendering pipeline model.

This module turns a :class:`~repro.android.layers.Scene` into increments of
the 11 performance counters of the paper's Table 1.  The model follows the
stages of the real binning architecture (Section 2.1/2.2 of the paper):

1. **Vertex / VPC stage.**  Every submitted primitive passes through the
   vertex pipeline and the vertex cache regardless of occlusion, so
   ``PERF_VPC_PC_PRIMITIVES`` and ``PERF_VPC_SP_COMPONENTS`` count all
   scene geometry, and ``PERF_VPC_LRZ_ASSIGN_PRIMITIVES`` counts the
   primitives handed to the LRZ unit (the occluder set — opaque geometry).

2. **LRZ (Low Resolution Z) pass.**  Fragments of lower layers occluded by
   opaque geometry above them are discarded early.  The LRZ counters count
   what *survives*: visible primitives, visible pixels, and the 8x8 pixel
   blocks the pass touches, full or partial.

3. **Rasterization.**  The rasterizer walks supertiles (the binning tiles,
   whose geometry is a property of the GPU model) and 8x4 fine blocks over
   the visible fragments; the RAS counters count those tiles and the
   cycles the walk takes.

The counter arithmetic is integer and deterministic: for a fixed scene and
GPU the same increments always result, reproducing the paper's observation
that "for each key, repetitive presses always result in the same change of
PC values" (Section 3.4).  All stochastic effects (split reads, sampling
jitter, background noise) live elsewhere — in the sampler and the noise
sources — never in the pipeline itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.android.geometry import Rect, covered_area
from repro.android.layers import DrawOp, Scene
from repro.gpu import counters as pc
from repro.gpu.adreno import LRZ_BLOCK, RAS_BLOCK, AdrenoSpec

#: Cost model for RAS_SUPERTILE_ACTIVE_CYCLES: cycles per fine block walked
#: plus a fixed cost per supertile visited.
_CYCLES_PER_RAS_BLOCK = 2
_CYCLES_PER_SUPERTILE = 16


@dataclass(frozen=True)
class FrameStats:
    """Result of rendering one frame."""

    increment: pc.CounterIncrement
    pixels_touched: int
    render_time_s: float

    @property
    def is_empty(self) -> bool:
        return not self.increment


def _visibility(op: DrawOp, occluders: List[Rect]) -> float:
    """Fraction of the op's rectangle not hidden by opaque geometry above."""
    if op.rect.is_empty:
        return 0.0
    overlaps = [op.rect.intersect(r) for r in occluders]
    occluded = covered_area(overlaps)
    visible = max(0, op.rect.area - occluded)
    return visible / op.rect.area


class AdrenoPipeline:
    """Renders scenes on one GPU model, producing counter increments."""

    def __init__(self, spec: AdrenoSpec) -> None:
        self.spec = spec

    def render(self, scene: Scene) -> FrameStats:
        """Render a full scene and return the counter increments.

        Android only submits a frame when something changed (the paper's
        Fig 5: "PC values remain unchanged if the screen display does not
        change"), so callers render exactly one frame per damage event.
        """
        inc = pc.CounterIncrement()
        pixels_touched = 0

        for _, op, occluders in scene.ops_with_occluders():
            # --- VPC stage: everything submitted is counted. ---
            inc.add(pc.VPC_PC_PRIMITIVES, op.primitives)
            inc.add(pc.VPC_SP_COMPONENTS, op.vertex_components)
            if op.opaque:
                inc.add(pc.VPC_LRZ_ASSIGN_PRIMITIVES, op.primitives)

            visibility = _visibility(op, occluders)

            # --- LRZ pass: survivors only. ---
            if visibility > 0.0:
                inc.add(pc.LRZ_VISIBLE_PRIM_AFTER_LRZ, op.primitives)
            visible_pixels = int(round(op.fragment_pixels * visibility))
            inc.add(pc.LRZ_VISIBLE_PIXEL_AFTER_LRZ, visible_pixels)

            lrz_cov = op.rect.tile_counts(*LRZ_BLOCK)
            # Dense ops (solid quads) fully cover their interior blocks;
            # sparse glyph ink only partially covers blocks it touches.
            if op.coverage >= 0.95:
                full8 = lrz_cov.full
                part8 = lrz_cov.partial
            else:
                full8 = int(lrz_cov.full * op.coverage)
                part8 = lrz_cov.partial + (lrz_cov.full - full8)
            inc.add(pc.LRZ_FULL_8X8_TILES, int(round(full8 * visibility)))
            inc.add(pc.LRZ_PARTIAL_8X8_TILES, int(round(part8 * visibility)))

            # --- Rasterization over the visible fragments. ---
            st_cov = op.rect.tile_counts(self.spec.supertile_w, self.spec.supertile_h)
            super_tiles = max(1, int(round(st_cov.total * visibility))) if visibility else 0
            inc.add(pc.RAS_SUPER_TILES, super_tiles)

            ras_cov = op.rect.tile_counts(*RAS_BLOCK)
            ras_blocks = int(round(ras_cov.total * visibility))
            inc.add(pc.RAS_8X4_TILES, ras_blocks)
            if op.coverage >= 0.95:
                fully = int(round(ras_cov.full * visibility))
            else:
                fully = int(round(ras_cov.full * op.coverage * visibility))
            inc.add(pc.RAS_FULLY_COVERED_8X4_TILES, fully)

            inc.add(
                pc.RAS_SUPERTILE_ACTIVE_CYCLES,
                ras_blocks * _CYCLES_PER_RAS_BLOCK + super_tiles * _CYCLES_PER_SUPERTILE,
            )

            pixels_touched += visible_pixels

        return FrameStats(
            increment=inc,
            pixels_touched=pixels_touched,
            render_time_s=self.spec.render_time_s(pixels_touched),
        )
