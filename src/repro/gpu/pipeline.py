"""Adreno tile-based rendering pipeline model.

This module turns a :class:`~repro.android.layers.Scene` into increments of
the 11 performance counters of the paper's Table 1.  The model follows the
stages of the real binning architecture (Section 2.1/2.2 of the paper):

1. **Vertex / VPC stage.**  Every submitted primitive passes through the
   vertex pipeline and the vertex cache regardless of occlusion, so
   ``PERF_VPC_PC_PRIMITIVES`` and ``PERF_VPC_SP_COMPONENTS`` count all
   scene geometry, and ``PERF_VPC_LRZ_ASSIGN_PRIMITIVES`` counts the
   primitives handed to the LRZ unit (the occluder set — opaque geometry).

2. **LRZ (Low Resolution Z) pass.**  Fragments of lower layers occluded by
   opaque geometry above them are discarded early.  The LRZ counters count
   what *survives*: visible primitives, visible pixels, and the 8x8 pixel
   blocks the pass touches, full or partial.

3. **Rasterization.**  The rasterizer walks supertiles (the binning tiles,
   whose geometry is a property of the GPU model) and 8x4 fine blocks over
   the visible fragments; the RAS counters count those tiles and the
   cycles the walk takes.

The counter arithmetic is integer and deterministic: for a fixed scene and
GPU the same increments always result, reproducing the paper's observation
that "for each key, repetitive presses always result in the same change of
PC values" (Section 3.4).  All stochastic effects (split reads, sampling
jitter, background noise) live elsewhere — in the sampler and the noise
sources — never in the pipeline itself.

Execution: :meth:`AdrenoPipeline.render` stacks the scene's ops into
parallel numpy arrays (:meth:`Scene.op_arrays`) and composites the whole
frame in one batched pass — per-stage reductions over op columns, with
occlusion solved per layer on a coordinate-compressed occluder grid —
instead of a Python loop per op.  :meth:`AdrenoPipeline.render_reference`
keeps the original per-op scalar walk; the two are integer-identical (the
property the golden-trace suite pins), every rounding step in the batched
pass mirroring the scalar expression shape exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.android.geometry import Rect, covered_area
from repro.android.layers import DrawOp, Scene
from repro.gpu import counters as pc
from repro.gpu.adreno import LRZ_BLOCK, RAS_BLOCK, AdrenoSpec

#: Cost model for RAS_SUPERTILE_ACTIVE_CYCLES: cycles per fine block walked
#: plus a fixed cost per supertile visited.
_CYCLES_PER_RAS_BLOCK = 2
_CYCLES_PER_SUPERTILE = 16

#: Ink coverage at or above this renders as a dense (solid) op.
_DENSE_COVERAGE = 0.95


@dataclass(frozen=True)
class FrameStats:
    """Result of rendering one frame."""

    increment: pc.CounterIncrement
    pixels_touched: int
    render_time_s: float

    @property
    def is_empty(self) -> bool:
        return not self.increment


def _visibility(op: DrawOp, occluders: List[Rect]) -> float:
    """Fraction of the op's rectangle not hidden by opaque geometry above."""
    if op.rect.is_empty:
        return 0.0
    overlaps = [op.rect.intersect(r) for r in occluders]
    occluded = covered_area(overlaps)
    visible = max(0, op.rect.area - occluded)
    return visible / op.rect.area


def _tile_counts_batch(left, top, right, bottom, tile_w, tile_h, nonempty):
    """Vectorized :meth:`Rect.tile_counts` over op columns.

    ``tile_w``/``tile_h`` are ``(k, 1)`` columns so several tile
    geometries (LRZ 8x8, RAS 8x4, the GPU's supertile) resolve in one
    broadcast pass.  The arithmetic matches ``_tile_counts_cached``
    (numpy's floor division matches Python's on negatives), with empty
    rectangles masked to zero — the raw column/row formulas are nonzero
    for inverted extents.
    """
    cols = -((-right) // tile_w) - left // tile_w
    rows = -((-bottom) // tile_h) - top // tile_h
    full_cols = np.maximum(0, right // tile_w - (-((-left) // tile_w)))
    full_rows = np.maximum(0, bottom // tile_h - (-((-top) // tile_h)))
    full = np.where(nonempty, full_cols * full_rows, 0)
    partial = np.where(nonempty, cols * rows - full, 0)
    return full, partial


def _clip_areas(op_l, op_t, op_r, op_b, rect) -> np.ndarray:
    """Per-op area of intersection with one ``(l, t, r, b)`` rectangle."""
    w = np.minimum(op_r, rect[2]) - np.maximum(op_l, rect[0])
    h = np.minimum(op_b, rect[3]) - np.maximum(op_t, rect[1])
    np.maximum(w, 0, out=w)
    np.maximum(h, 0, out=h)
    return w * h


def _occluded_areas(op_l, op_t, op_r, op_b, occ) -> np.ndarray:
    """Exact per-op area hidden by the union of occluder rectangles.

    One or two occluders resolve by direct clipping (inclusion–exclusion
    for the pair — the keyboard's press-popup case).  Larger sets fall
    back to a coordinate-compressed grid: occluder edges cut the plane
    into cells that each lie wholly inside or outside every occluder, so
    the union is an exact cell set and each op's occluded area is the
    summed integer clip of its rectangle against those cells — identical
    to the scalar slab sweep over per-op intersections.
    """
    if occ.shape[0] == 1:
        return _clip_areas(op_l, op_t, op_r, op_b, occ[0])
    if occ.shape[0] == 2:
        both = (
            np.maximum(occ[0, 0], occ[1, 0]),
            np.maximum(occ[0, 1], occ[1, 1]),
            np.minimum(occ[0, 2], occ[1, 2]),
            np.minimum(occ[0, 3], occ[1, 3]),
        )
        return (
            _clip_areas(op_l, op_t, op_r, op_b, occ[0])
            + _clip_areas(op_l, op_t, op_r, op_b, occ[1])
            - _clip_areas(op_l, op_t, op_r, op_b, both)
        )
    xs = np.unique(occ[:, (0, 2)])
    ys = np.unique(occ[:, (1, 3)])
    x0, x1 = xs[:-1], xs[1:]
    y0, y1 = ys[:-1], ys[1:]
    # covy[k, r] / covx[k, c]: occluder k fully spans grid row r / column
    # c.  float64 so the reductions run as BLAS matmuls; every value is a
    # small integer (well under 2**53), so float64 stays exact.
    covx = ((occ[:, 0][:, None] <= x0) & (occ[:, 2][:, None] >= x1)).astype(np.float64)
    covy = ((occ[:, 1][:, None] <= y0) & (occ[:, 3][:, None] >= y1)).astype(np.float64)
    covered = (covy.T @ covx > 0).astype(np.float64)
    # per-op clip extents against the grid rows/columns
    ow = np.minimum(op_r[:, None], x1) - np.maximum(op_l[:, None], x0)
    oh = np.minimum(op_b[:, None], y1) - np.maximum(op_t[:, None], y0)
    np.maximum(ow, 0, out=ow)
    np.maximum(oh, 0, out=oh)
    acc = (oh.astype(np.float64) @ covered) * ow
    return acc.sum(axis=1).astype(np.int64)


class AdrenoPipeline:
    """Renders scenes on one GPU model, producing counter increments."""

    def __init__(self, spec: AdrenoSpec) -> None:
        self.spec = spec
        # (k, 1) tile-geometry columns for the one-pass tile-count batch:
        # row 0 = LRZ 8x8, row 1 = RAS 8x4, row 2 = this GPU's supertile.
        self._tile_w = np.array(
            [[LRZ_BLOCK[0]], [RAS_BLOCK[0]], [spec.supertile_w]], dtype=np.int64
        )
        self._tile_h = np.array(
            [[LRZ_BLOCK[1]], [RAS_BLOCK[1]], [spec.supertile_h]], dtype=np.int64
        )

    # -- batched hot path ----------------------------------------------

    @staticmethod
    def _visibility_batch(arrs, area, nonempty) -> np.ndarray:
        """Per-op visible fraction after LRZ occlusion.

        Occluder edges induce one coordinate-compressed grid shared by the
        whole scene; each cell lies wholly inside or outside every
        occluder, so a single ``einsum`` over an occluder-above-layer mask
        yields, per layer, the exact set of covered cells, and each op's
        occluded area is the summed integer clip of its rectangle against
        those cells — identical to the scalar slab sweep over per-op
        intersections.
        """
        layer = arrs.layer
        n = len(layer)
        vis = np.zeros(n, dtype=np.float64)
        occ_mask = arrs.opaque & nonempty
        if occ_mask.any():
            occ = np.stack(
                [
                    arrs.left[occ_mask],
                    arrs.top[occ_mask],
                    arrs.right[occ_mask],
                    arrs.bottom[occ_mask],
                ],
                axis=1,
            )
            occ_layer = layer[occ_mask]
            occluded = np.zeros(n, dtype=np.int64)
            for idx in range(int(layer.max()) + 1):
                sel = layer == idx
                if not sel.any():
                    continue
                above = occ[occ_layer > idx]
                if above.shape[0] == 0:
                    continue
                occluded[sel] = _occluded_areas(
                    arrs.left[sel],
                    arrs.top[sel],
                    arrs.right[sel],
                    arrs.bottom[sel],
                    above,
                )
            visible = np.maximum(0, area - occluded)
            np.divide(visible, area, out=vis, where=area > 0)
        else:
            np.divide(area, area, out=vis, where=area > 0)
        return vis

    def render(self, scene: Scene) -> FrameStats:
        """Render a full scene and return the counter increments.

        Android only submits a frame when something changed (the paper's
        Fig 5: "PC values remain unchanged if the screen display does not
        change"), so callers render exactly one frame per damage event.

        The whole scene composites as one batched numpy pass; every
        rounding expression keeps the scalar reference's exact shape
        (``np.rint`` ↔ ``round`` are both half-to-even, ``astype(int64)``
        ↔ ``int()`` both truncate non-negatives), so the increments are
        integer-identical to :meth:`render_reference`.
        """
        arrs = scene.op_arrays()
        n = len(arrs)
        if n == 0:
            return FrameStats(
                increment=pc.CounterIncrement(),
                pixels_touched=0,
                render_time_s=self.spec.render_time_s(0),
            )
        left, top = arrs.left, arrs.top
        right, bottom = arrs.right, arrs.bottom
        coverage, primitives = arrs.coverage, arrs.primitives

        nonempty = (right > left) & (bottom > top)
        area = np.maximum(0, right - left) * np.maximum(0, bottom - top)
        frag = np.rint(area * coverage).astype(np.int64)
        quads = np.maximum(1, (primitives + 1) // 2)
        components = quads * 4 * np.where(arrs.textured, 10, 8)

        vis = self._visibility_batch(arrs, area, nonempty)
        visible_mask = vis > 0.0
        visible_pixels = np.rint(frag * vis).astype(np.int64)

        full, partial = _tile_counts_batch(
            left, top, right, bottom, self._tile_w, self._tile_h, nonempty
        )
        lrz_full, ras_full, st_full = full
        lrz_part, ras_part, st_part = partial

        dense = coverage >= _DENSE_COVERAGE
        full8 = np.where(dense, lrz_full, (lrz_full * coverage).astype(np.int64))
        part8 = np.where(dense, lrz_part, lrz_part + (lrz_full - full8))

        st_total = st_full + st_part
        super_tiles = np.where(
            vis != 0.0,
            np.maximum(1, np.rint(st_total * vis).astype(np.int64)),
            0,
        )

        ras_blocks = np.rint((ras_full + ras_part) * vis).astype(np.int64)
        fully = np.where(
            dense,
            np.rint(ras_full * vis).astype(np.int64),
            np.rint((ras_full * coverage) * vis).astype(np.int64),
        )

        inc = pc.CounterIncrement()
        inc.add(pc.VPC_PC_PRIMITIVES, int(primitives.sum()))
        inc.add(pc.VPC_SP_COMPONENTS, int(components.sum()))
        inc.add(pc.VPC_LRZ_ASSIGN_PRIMITIVES, int(primitives @ arrs.opaque))
        inc.add(pc.LRZ_VISIBLE_PRIM_AFTER_LRZ, int(primitives @ visible_mask))
        inc.add(pc.LRZ_VISIBLE_PIXEL_AFTER_LRZ, int(visible_pixels.sum()))
        inc.add(pc.LRZ_FULL_8X8_TILES, int(np.rint(full8 * vis).astype(np.int64).sum()))
        inc.add(
            pc.LRZ_PARTIAL_8X8_TILES, int(np.rint(part8 * vis).astype(np.int64).sum())
        )
        inc.add(pc.RAS_SUPER_TILES, int(super_tiles.sum()))
        inc.add(pc.RAS_8X4_TILES, int(ras_blocks.sum()))
        inc.add(pc.RAS_FULLY_COVERED_8X4_TILES, int(fully.sum()))
        inc.add(
            pc.RAS_SUPERTILE_ACTIVE_CYCLES,
            int(
                (ras_blocks * _CYCLES_PER_RAS_BLOCK).sum()
                + (super_tiles * _CYCLES_PER_SUPERTILE).sum()
            ),
        )

        pixels_touched = int(visible_pixels.sum())
        return FrameStats(
            increment=inc,
            pixels_touched=pixels_touched,
            render_time_s=self.spec.render_time_s(pixels_touched),
        )

    # -- scalar reference ----------------------------------------------

    def render_reference(self, scene: Scene) -> FrameStats:
        """The original per-op scalar walk, kept as the parity oracle.

        Slow but obviously faithful to the stage model; the test suite
        asserts :meth:`render` matches it integer-for-integer on every
        scene shape the simulator produces.
        """
        inc = pc.CounterIncrement()
        pixels_touched = 0

        for _, op, occluders in scene.ops_with_occluders():
            # --- VPC stage: everything submitted is counted. ---
            inc.add(pc.VPC_PC_PRIMITIVES, op.primitives)
            inc.add(pc.VPC_SP_COMPONENTS, op.vertex_components)
            if op.opaque:
                inc.add(pc.VPC_LRZ_ASSIGN_PRIMITIVES, op.primitives)

            visibility = _visibility(op, occluders)

            # --- LRZ pass: survivors only. ---
            if visibility > 0.0:
                inc.add(pc.LRZ_VISIBLE_PRIM_AFTER_LRZ, op.primitives)
            visible_pixels = int(round(op.fragment_pixels * visibility))
            inc.add(pc.LRZ_VISIBLE_PIXEL_AFTER_LRZ, visible_pixels)

            lrz_cov = op.rect.tile_counts(*LRZ_BLOCK)
            # Dense ops (solid quads) fully cover their interior blocks;
            # sparse glyph ink only partially covers blocks it touches.
            if op.coverage >= _DENSE_COVERAGE:
                full8 = lrz_cov.full
                part8 = lrz_cov.partial
            else:
                full8 = int(lrz_cov.full * op.coverage)
                part8 = lrz_cov.partial + (lrz_cov.full - full8)
            inc.add(pc.LRZ_FULL_8X8_TILES, int(round(full8 * visibility)))
            inc.add(pc.LRZ_PARTIAL_8X8_TILES, int(round(part8 * visibility)))

            # --- Rasterization over the visible fragments. ---
            st_cov = op.rect.tile_counts(self.spec.supertile_w, self.spec.supertile_h)
            super_tiles = max(1, int(round(st_cov.total * visibility))) if visibility else 0
            inc.add(pc.RAS_SUPER_TILES, super_tiles)

            ras_cov = op.rect.tile_counts(*RAS_BLOCK)
            ras_blocks = int(round(ras_cov.total * visibility))
            inc.add(pc.RAS_8X4_TILES, ras_blocks)
            if op.coverage >= _DENSE_COVERAGE:
                fully = int(round(ras_cov.full * visibility))
            else:
                fully = int(round(ras_cov.full * op.coverage * visibility))
            inc.add(pc.RAS_FULLY_COVERED_8X4_TILES, fully)

            inc.add(
                pc.RAS_SUPERTILE_ACTIVE_CYCLES,
                ras_blocks * _CYCLES_PER_RAS_BLOCK + super_tiles * _CYCLES_PER_SUPERTILE,
            )

            pixels_touched += visible_pixels

        return FrameStats(
            increment=inc,
            pixels_touched=pixels_touched,
            render_time_s=self.spec.render_time_s(pixels_touched),
        )
