"""The ``GL_AMD_performance_monitor`` OpenGL ES extension (Section 3.3).

The paper's first step is *identifying* the overdraw-related counters: it
iterates the extension's groups and calls ``GetPerfMonitorCounterStringAMD``
to obtain each counter's string identifier, selecting the LRZ/RAS/VPC
entries of Table 1.

Crucially, the extension is also the reason the attack needs the KGSL
device file at all: a performance monitor created through it "can only be
used by the attacking application to read the local PC value changes
caused by this application itself" — it scopes counters to the calling
GL context.  This module reproduces both behaviours: full enumeration,
and monitors that only observe the activity the caller itself submits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.gpu import counters as pc

#: Extension name string, as in the GL extensions list.
EXTENSION_NAME = "GL_AMD_performance_monitor"


@dataclass
class _Monitor:
    """One performance monitor object (glGenPerfMonitorsAMD)."""

    selected: List[pc.CounterId] = field(default_factory=list)
    active: bool = False
    baseline: Dict[pc.CounterId, int] = field(default_factory=dict)
    result: Dict[pc.CounterId, int] = field(default_factory=dict)
    result_available: bool = False


class GlAmdPerformanceMonitor:
    """The extension's API surface over the simulated Adreno counters.

    ``local_counters`` is the calling context's own counter bank — the
    extension never exposes other applications' GPU activity, which is
    exactly the limitation that pushes the attack to ``/dev/kgsl-3d0``.
    """

    def __init__(self, local_counters: Optional[pc.CounterBank] = None) -> None:
        self.local = local_counters if local_counters is not None else pc.CounterBank()
        self._monitors: Dict[int, _Monitor] = {}
        self._next_id = 1

    # -- enumeration (the paper's counter-identification step) ----------

    def get_perf_monitor_groups(self) -> List[int]:
        """``glGetPerfMonitorGroupsAMD``: available group ids."""
        return sorted({int(spec.group) for spec in pc.SELECTED_COUNTERS})

    def get_perf_monitor_counters(self, group: int) -> List[int]:
        """``glGetPerfMonitorCountersAMD``: countables in one group."""
        counters = [
            spec.countable
            for spec in pc.SELECTED_COUNTERS
            if int(spec.group) == group
        ]
        if not counters:
            raise ValueError(f"unknown group {group:#x}")
        return sorted(counters)

    def get_perf_monitor_group_string(self, group: int) -> str:
        """``glGetPerfMonitorGroupStringAMD``."""
        names = {0x5: "VPC", 0x7: "RAS", 0x19: "LRZ"}
        try:
            return names[group]
        except KeyError:
            raise ValueError(f"unknown group {group:#x}") from None

    def get_perf_monitor_counter_string(self, group: int, countable: int) -> str:
        """``glGetPerfMonitorCounterStringAMD``: the Table 1 identifiers."""
        spec = pc.COUNTERS_BY_ID.get((pc.CounterGroup(group), countable))
        if spec is None:
            raise ValueError(f"unknown counter ({group:#x}, {countable})")
        return spec.name

    def enumerate_all(self) -> Dict[str, Tuple[int, int]]:
        """The paper's discovery loop: every counter's string identifier
        mapped to its (group, countable) pair."""
        out: Dict[str, Tuple[int, int]] = {}
        for group in self.get_perf_monitor_groups():
            for countable in self.get_perf_monitor_counters(group):
                out[self.get_perf_monitor_counter_string(group, countable)] = (
                    group,
                    countable,
                )
        return out

    # -- monitor lifecycle ----------------------------------------------

    def gen_perf_monitors(self, count: int = 1) -> List[int]:
        ids = []
        for _ in range(count):
            self._monitors[self._next_id] = _Monitor()
            ids.append(self._next_id)
            self._next_id += 1
        return ids

    def delete_perf_monitors(self, ids: List[int]) -> None:
        for monitor_id in ids:
            self._monitors.pop(monitor_id, None)

    def select_perf_monitor_counters(
        self, monitor_id: int, group: int, countables: List[int]
    ) -> None:
        monitor = self._monitor(monitor_id)
        if monitor.active:
            raise RuntimeError("cannot select counters on an active monitor")
        for countable in countables:
            counter_id = (pc.CounterGroup(group), countable)
            if counter_id not in pc.COUNTERS_BY_ID:
                raise ValueError(f"unknown counter ({group:#x}, {countable})")
            if counter_id not in monitor.selected:
                monitor.selected.append(counter_id)

    def begin_perf_monitor(self, monitor_id: int) -> None:
        monitor = self._monitor(monitor_id)
        if monitor.active:
            raise RuntimeError("monitor already active")
        monitor.active = True
        monitor.result_available = False
        monitor.baseline = {
            cid: self.local.read_id(cid) for cid in monitor.selected
        }

    def end_perf_monitor(self, monitor_id: int) -> None:
        monitor = self._monitor(monitor_id)
        if not monitor.active:
            raise RuntimeError("monitor not active")
        monitor.active = False
        monitor.result = {
            cid: self.local.read_id(cid) - monitor.baseline.get(cid, 0)
            for cid in monitor.selected
        }
        monitor.result_available = True

    def get_perf_monitor_counter_data(self, monitor_id: int) -> Dict[pc.CounterId, int]:
        """``glGetPerfMonitorCounterDataAMD``: results after end."""
        monitor = self._monitor(monitor_id)
        if not monitor.result_available:
            raise RuntimeError("no result available; call end_perf_monitor first")
        return dict(monitor.result)

    def _monitor(self, monitor_id: int) -> _Monitor:
        try:
            return self._monitors[monitor_id]
        except KeyError:
            raise ValueError(f"unknown monitor {monitor_id}") from None

    # -- the context's own rendering --------------------------------------

    def submit_local_work(self, increment: pc.CounterIncrement) -> None:
        """Rendering performed by *this* GL context (and only this one);
        the extension never sees anyone else's."""
        self.local.apply(increment)
