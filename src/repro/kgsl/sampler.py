"""Periodic GPU performance-counter sampling (paper Section 4).

The attacking application's background service reads the selected counters
"every 8 ms by default" — equal to or slightly below half the 60 Hz screen
refresh interval so every rendered frame is covered by at least one read.
This module implements that monitoring service against the simulated KGSL
device file, including the scheduling realities the paper measures:

* **CPU contention** (Fig 22a): under load, the service is preempted, so
  reads land late or are skipped entirely, which both splits counter
  deltas and merges consecutive changes;
* **GPU contention** (Fig 22b) is modeled upstream — background rendering
  adds frames and stretches render times — the sampler just observes it;
* **power** (Fig 26): each ioctl read and each inference costs energy; the
  analytic battery model lives here because it is a property of the
  sampling duty cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.gpu import counters as pc
from repro.kgsl.device_file import KgslDeviceFile
from repro.kgsl.ioctl import (
    IOCTL_KGSL_PERFCOUNTER_GET,
    IOCTL_KGSL_PERFCOUNTER_READ,
    KgslPerfcounterGet,
    KgslPerfcounterRead,
    KgslPerfcounterReadGroup,
)

#: Default sampling interval: 8 ms (Section 4 / Section 7.4).
DEFAULT_INTERVAL_S = 0.008

#: Baseline scheduling jitter of an idle Android system.
_BASE_JITTER_S = 250e-6
#: Probability that Android timer coalescing defers a wakeup noticeably.
_COALESCE_PROB = 0.08
#: Mean extra delay when a wakeup is coalesced.
_COALESCE_DELAY_S = 5e-3
#: Mean preemption delay when the service loses the CPU.
_PREEMPT_DELAY_S = 2.2e-3


@dataclass(frozen=True)
class SystemLoad:
    """Concurrent workload on the victim device (Section 7.3)."""

    cpu_utilization: float = 0.0
    gpu_utilization: float = 0.0

    def __post_init__(self) -> None:
        for name in ("cpu_utilization", "gpu_utilization"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


IDLE = SystemLoad()


@dataclass(frozen=True)
class PcSample:
    """One read of all selected counters."""

    nominal_t: float
    t: float
    values: Dict[pc.CounterId, int]


@dataclass(frozen=True)
class PcDelta:
    """Per-counter change between two consecutive samples."""

    t: float
    prev_t: float
    values: Dict[pc.CounterId, int]

    @property
    def total(self) -> int:
        return sum(self.values.values())

    def get(self, spec: pc.CounterSpec) -> int:
        return self.values.get(spec.counter_id, 0)

    def __bool__(self) -> bool:
        return any(self.values.values())

    def merge(self, other: "PcDelta") -> "PcDelta":
        """Combine with an *earlier* delta (Algorithm 1's split recovery)."""
        merged = dict(other.values)
        for counter_id, value in self.values.items():
            merged[counter_id] = merged.get(counter_id, 0) + value
        return PcDelta(t=self.t, prev_t=other.prev_t, values=merged)

    def scaled(self, factor: float) -> "PcDelta":
        """Delta scaled by ``factor`` (duplication-halving heuristic)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return PcDelta(
            t=self.t,
            prev_t=self.prev_t,
            values={cid: int(round(v * factor)) for cid, v in self.values.items()},
        )


class PerfCounterSampler:
    """The attacking service's counter-reading loop."""

    def __init__(
        self,
        device_file: KgslDeviceFile,
        counters: Sequence[pc.CounterSpec] = tuple(pc.SELECTED_COUNTERS),
        interval_s: float = DEFAULT_INTERVAL_S,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("sampling interval must be positive")
        self.device_file = device_file
        self.counters = list(counters)
        self.interval_s = interval_s
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.reads_issued = 0
        self.reads_dropped = 0
        self._reserve_counters()

    def _reserve_counters(self) -> None:
        """PERFCOUNTER_GET for every selected counter (paper Fig 10)."""
        for spec in self.counters:
            get = KgslPerfcounterGet(groupid=int(spec.group), countable=spec.countable)
            self.device_file.ioctl(IOCTL_KGSL_PERFCOUNTER_GET, get)

    # ------------------------------------------------------------------

    def read_once(self) -> Dict[pc.CounterId, int]:
        """Blockread all selected counters at the current device clock."""
        read = KgslPerfcounterRead(
            reads=[
                KgslPerfcounterReadGroup(groupid=int(s.group), countable=s.countable)
                for s in self.counters
            ]
        )
        self.device_file.ioctl(IOCTL_KGSL_PERFCOUNTER_READ, read)
        return {
            (pc.CounterGroup(slot.groupid), slot.countable): slot.value
            for slot in read.reads
        }

    def _scheduling_delay(self, load: SystemLoad) -> Optional[float]:
        """Actual-minus-nominal read latency; None if the read is skipped.

        With n busy threads per core the service's chance of running on
        time falls; past ~50 % CPU utilization preemptions dominate and at
        very high load entire reads are lost — the mechanism behind the
        accuracy cliff of Fig 22a.
        """
        cpu = load.cpu_utilization
        delay = float(self.rng.exponential(_BASE_JITTER_S))
        if self.rng.random() < _COALESCE_PROB:
            delay += float(self.rng.exponential(_COALESCE_DELAY_S))
        if cpu > 0 and self.rng.random() < cpu * 0.75:
            contention = cpu * cpu
            delay += float(self.rng.exponential(_PREEMPT_DELAY_S * (0.2 + 2.0 * contention)))
        drop_prob = max(0.0, cpu - 0.45) ** 2 * 0.55
        if self.rng.random() < drop_prob:
            return None
        return delay

    def iter_samples(
        self, t0: float, t1: float, load: SystemLoad = IDLE
    ) -> Iterator[PcSample]:
        """The sampling loop over ``[t0, t1)``, one read at a time.

        This is the streaming form consumed by the session runtime: each
        ``next()`` issues (at most) one counter read, so a downstream
        stage that stops early — a launch detector escalating to attack
        mode, say — really does stop the polling, exactly like the
        Android service it models.
        """
        nominal = t0
        last_t = -1.0
        while nominal < t1:
            delay = self._scheduling_delay(load)
            if delay is None:
                self.reads_dropped += 1
            else:
                # reads are issued by one thread, so they stay monotone even
                # when a coalesced wakeup overshoots the next nominal tick
                read_t = max(nominal + delay, last_t + 1e-5)
                last_t = read_t
                self.device_file.clock.set(max(self.device_file.clock.now, read_t))
                values = self.read_once()
                self.reads_issued += 1
                yield PcSample(nominal_t=nominal, t=read_t, values=values)
            nominal += self.interval_s

    def sample_range(
        self, t0: float, t1: float, load: SystemLoad = IDLE
    ) -> List[PcSample]:
        """Run the whole sampling loop over ``[t0, t1)`` and materialize it."""
        return list(self.iter_samples(t0, t1, load=load))


def deltas(samples: Sequence[PcSample]) -> List[PcDelta]:
    """Consecutive-sample differences — the attack's raw event stream."""
    out: List[PcDelta] = []
    for prev, cur in zip(samples, samples[1:]):
        diff = pc.delta(prev.values, cur.values)
        out.append(PcDelta(t=cur.t, prev_t=prev.t, values=diff))
    return out


def nonzero_deltas(samples: Sequence[PcSample]) -> List[PcDelta]:
    """Only the deltas where some counter moved (screen changed)."""
    return [d for d in deltas(samples) if d]


def nonzero_deltas_vectorized(
    samples: Sequence[PcSample], prev: Optional[PcSample] = None
) -> List[PcDelta]:
    """Vectorized :func:`nonzero_deltas`: one numpy diff over the batch.

    Produces byte-identical :class:`PcDelta` objects (same counter order,
    same wraparound handling as :func:`repro.gpu.counters.delta`) but
    differences and filters all samples in one pass, which is what keeps
    a 100-session batch runtime out of per-pair Python loops.  ``prev``
    optionally supplies the sample preceding ``samples[0]`` so chunked
    callers can difference across chunk boundaries.
    """
    chain: List[PcSample] = ([prev] if prev is not None else []) + list(samples)
    if len(chain) < 2:
        return []
    counter_ids = list(chain[0].values.keys())
    matrix = np.array(
        [[s.values[cid] for cid in counter_ids] for s in chain], dtype=np.int64
    )
    diffs = np.diff(matrix, axis=0)
    np.add(diffs, pc.CounterBank.WRAP, out=diffs, where=diffs < 0)
    keep = np.flatnonzero(diffs.any(axis=1))
    out: List[PcDelta] = []
    for row in keep:
        values = {
            cid: int(v) for cid, v in zip(counter_ids, diffs[row])
        }
        out.append(PcDelta(t=chain[row + 1].t, prev_t=chain[row].t, values=values))
    return out


@dataclass(frozen=True)
class PowerModel:
    """Analytic battery-overhead model for the attack service (Fig 26).

    Energy = per-ioctl cost x read rate + per-inference cost x typing rate,
    plus keeping one little core awake a fraction of the time.  Reported
    as percent of a typical smartphone battery per elapsed time.
    """

    battery_mwh: float = 17000.0  # ~4500 mAh at 3.85 V
    ioctl_energy_uj: float = 22.0
    inference_energy_uj: float = 60.0
    wakeup_power_mw: float = 6.0

    def extra_consumption_percent(
        self,
        elapsed_s: float,
        interval_s: float = DEFAULT_INTERVAL_S,
        gpu_sample_power_mw: float = 8.5,
        inferences_per_s: float = 0.5,
    ) -> float:
        reads = elapsed_s / interval_s
        energy_mj = (
            reads * self.ioctl_energy_uj / 1000.0
            + elapsed_s * inferences_per_s * self.inference_energy_uj / 1000.0
        )
        energy_mwh = energy_mj / 3600.0
        standby_mwh = (self.wakeup_power_mw + gpu_sample_power_mw) * elapsed_s / 3600.0
        return 100.0 * (energy_mwh + standby_mwh) / self.battery_mwh
