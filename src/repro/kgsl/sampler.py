"""Periodic GPU performance-counter sampling (paper Section 4).

The attacking application's background service reads the selected counters
"every 8 ms by default" — equal to or slightly below half the 60 Hz screen
refresh interval so every rendered frame is covered by at least one read.
This module implements that monitoring service against the simulated KGSL
device file, including the scheduling realities the paper measures:

* **CPU contention** (Fig 22a): under load, the service is preempted, so
  reads land late or are skipped entirely, which both splits counter
  deltas and merges consecutive changes;
* **GPU contention** (Fig 22b) is modeled upstream — background rendering
  adds frames and stretches render times — the sampler just observes it;
* **power** (Fig 26): each ioctl read and each inference costs energy; the
  analytic battery model lives here because it is a property of the
  sampling duty cycle.
"""

from __future__ import annotations

import errno
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.gpu import counters as pc
from repro.kgsl.device_file import KgslDeviceFile
from repro.kgsl.ioctl import (
    IOCTL_KGSL_PERFCOUNTER_GET,
    IOCTL_KGSL_PERFCOUNTER_READ,
    IoctlError,
    KgslPerfcounterGet,
    KgslPerfcounterRead,
    KgslPerfcounterReadGroup,
)

#: Default sampling interval: 8 ms (Section 4 / Section 7.4).
DEFAULT_INTERVAL_S = 0.008

#: ioctl failures worth retrying: the driver was busy, not broken.
_TRANSIENT_ERRNOS = frozenset({errno.EIO, errno.EBUSY})
_EINVAL = errno.EINVAL

#: Baseline scheduling jitter of an idle Android system.
_BASE_JITTER_S = 250e-6
#: Probability that Android timer coalescing defers a wakeup noticeably.
_COALESCE_PROB = 0.08
#: Mean extra delay when a wakeup is coalesced.
_COALESCE_DELAY_S = 5e-3
#: Mean preemption delay when the service loses the CPU.
_PREEMPT_DELAY_S = 2.2e-3


@dataclass(frozen=True)
class SystemLoad:
    """Concurrent workload on the victim device (Section 7.3)."""

    cpu_utilization: float = 0.0
    gpu_utilization: float = 0.0

    def __post_init__(self) -> None:
        for name in ("cpu_utilization", "gpu_utilization"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


IDLE = SystemLoad()


@dataclass(frozen=True)
class PcSample:
    """One read of the currently-available selected counters.

    ``missing`` lists configured counters whose registers were not held
    at read time (reclaimed by another client, re-registration pending);
    their values are *unknown*, not zero.
    """

    nominal_t: float
    t: float
    values: Dict[pc.CounterId, int]
    missing: Tuple[pc.CounterId, ...] = ()


@dataclass(frozen=True)
class PcDelta:
    """Per-counter change between two consecutive samples.

    ``missing`` carries counters whose change over this interval is
    unknown (absent from at least one endpoint sample) — downstream
    classification must mask those dimensions rather than read them as
    zero.  ``gap`` marks a delta spanning noticeably more than one
    nominal sampling interval (dropped or deferred reads in between).
    """

    t: float
    prev_t: float
    values: Dict[pc.CounterId, int]
    missing: Tuple[pc.CounterId, ...] = ()
    gap: bool = False

    @property
    def total(self) -> int:
        return sum(self.values.values())

    @property
    def degraded(self) -> bool:
        return bool(self.missing) or self.gap

    def get(self, spec: pc.CounterSpec, default: Optional[int] = None) -> int:
        """Change of one counter over this interval.

        A counter listed in :attr:`missing` has an *unknown* change —
        reading it silently as 0 is exactly the error downstream masking
        exists to prevent — so a masked counter raises :class:`KeyError`
        unless an explicit ``default`` is supplied.  A counter that was
        simply never selected (absent from both ``values`` and
        ``missing``) still reads as zero change, or ``default`` when one
        is given.
        """
        counter_id = spec.counter_id
        if counter_id in self.values:
            return self.values[counter_id]
        if counter_id in self.missing:
            if default is None:
                raise KeyError(
                    f"counter {spec.name} is masked over "
                    f"[{self.prev_t:.4f}, {self.t:.4f}] — its change is "
                    "unknown, not zero; pass an explicit default= or "
                    "check `missing` first"
                )
            return default
        return 0 if default is None else default

    def __bool__(self) -> bool:
        return any(self.values.values())

    def merge(self, other: "PcDelta") -> "PcDelta":
        """Combine with an *earlier* delta (Algorithm 1's split recovery).

        ``other`` must cover an interval no later than this one; equal
        timestamps are allowed so :meth:`split` parts recombine.  A
        swapped call would fabricate a delta whose ``prev_t`` postdates
        its ``t``, so ordering is validated rather than trusted.
        """
        if other.t > self.t or other.prev_t > self.prev_t:
            raise ValueError(
                "merge() expects the earlier delta as its argument: other "
                f"covers [{other.prev_t:.4f}, {other.t:.4f}], which does not "
                f"precede [{self.prev_t:.4f}, {self.t:.4f}]"
            )
        merged = dict(other.values)
        for counter_id, value in self.values.items():
            merged[counter_id] = merged.get(counter_id, 0) + value
        missing = (
            tuple(sorted(set(self.missing) | set(other.missing)))
            if (self.missing or other.missing)
            else ()
        )
        return PcDelta(
            t=self.t,
            prev_t=other.prev_t,
            values=merged,
            missing=missing,
            gap=self.gap or other.gap,
        )

    def scaled(self, factor: float) -> "PcDelta":
        """Delta scaled by ``factor`` (duplication-halving heuristic).

        Values are floored deterministically: round-half-to-even would
        lose or invent events when a halved delta is later re-merged,
        breaking the :meth:`split` round trip.
        """
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return PcDelta(
            t=self.t,
            prev_t=self.prev_t,
            values={cid: int(v * factor) for cid, v in self.values.items()},
            missing=self.missing,
            gap=self.gap,
        )

    def split(self, factor: float = 0.5) -> Tuple["PcDelta", "PcDelta"]:
        """Split into ``(part, remainder)`` that merge back exactly.

        ``part`` is :meth:`scaled` by ``factor``; ``remainder`` carries
        every event the floor dropped, so
        ``remainder.merge(part).values == self.values`` — the
        duplication-halving round trip the old round-half-to-even
        scaling silently broke.
        """
        if not 0.0 <= factor <= 1.0:
            raise ValueError("split factor must be in [0, 1]")
        part = self.scaled(factor)
        remainder = PcDelta(
            t=self.t,
            prev_t=self.prev_t,
            values={
                cid: v - part.values[cid] for cid, v in self.values.items()
            },
            missing=self.missing,
            gap=self.gap,
        )
        return part, remainder


class PerfCounterSampler:
    """The attacking service's counter-reading loop.

    The loop is *resilient*: transient ioctl failures (``EIO``/``EBUSY``)
    are retried with backoff in device time; a counter register reclaimed
    by another client is detected via the resulting ``EINVAL``, dropped
    from the active read set, and automatically re-registered with
    exponential backoff once the other client releases it.  Everything
    the resilience layer does is recorded in :attr:`fault_log` so the
    runtime stage can surface degraded-mode events in the shared
    :class:`~repro.runtime.trace.RuntimeTrace`.

    Access-policy denials are a separate, *permanent* failure class: a
    counter denied with ``EACCES`` (Section 9.2's RBAC; see
    ``docs/defenses.md``) is masked for the rest of the session and never
    re-registered — unlike contention losses, a policy won't change its
    mind, and retrying would only feed the audit log.  A fully denied
    sampler runs blind (empty reads, every delta masked) rather than
    crashing the service.

    With no fault injector and no access policy installed none of these
    paths execute and the loop is byte-identical to the infallible
    original.
    """

    #: Transient-read retries before the failure is considered permanent.
    MAX_READ_RETRIES = 4
    #: Device-time backoff per retry attempt (multiplied by attempt #).
    RETRY_BACKOFF_S = 0.0004
    #: Cap on the re-registration backoff (in reads).
    MAX_REREGISTER_BACKOFF = 64

    def __init__(
        self,
        device_file: KgslDeviceFile,
        counters: Sequence[pc.CounterSpec] = tuple(pc.SELECTED_COUNTERS),
        interval_s: float = DEFAULT_INTERVAL_S,
        rng: Optional[np.random.Generator] = None,
        fault_injector=None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("sampling interval must be positive")
        self.device_file = device_file
        self.counters = list(counters)
        self.interval_s = interval_s
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.fault_injector = fault_injector
        self.reads_issued = 0
        self.reads_dropped = 0
        # -- resilience bookkeeping ------------------------------------
        self.retries = 0
        self.reregistrations = 0
        self.counters_lost = 0
        self.counters_denied = 0
        self.fault_log: List[Tuple[str, Dict[str, object]]] = []
        self._read_index = 0
        #: lost spec -> (read index of next re-registration attempt, failures)
        self._lost: Dict[pc.CounterSpec, Tuple[int, int]] = {}
        #: specs an access policy denied with EACCES — permanent, never
        #: revived (a policy denial is not contention; see docs/defenses.md)
        self._denied: set = set()
        self._active: List[pc.CounterSpec] = []
        self._reserve_counters()

    @property
    def degraded(self) -> bool:
        """Whether the resilience layer has had to intervene at all."""
        return bool(
            self.retries
            or self.reregistrations
            or self.counters_lost
            or self.counters_denied
            or self._lost
        )

    def drain_fault_log(self) -> List[Tuple[str, Dict[str, object]]]:
        """Hand pending resilience events to the caller (runtime stage)."""
        out, self.fault_log = self.fault_log, []
        return out

    def flush_metrics(self, metrics) -> None:
        """Publish the loop's cumulative tallies into a metrics registry.

        Called once at a stage boundary (session end, mode escalation) —
        never per read — so the 8 ms sampling loop carries no registry
        traffic.  ``metrics`` is any :class:`repro.obs.MetricsRegistry`;
        the no-op default makes this a single attribute check.
        """
        if not metrics.enabled:
            return
        metrics.counter("sampler.reads_issued").inc(self.reads_issued)
        metrics.counter("sampler.reads_dropped").inc(self.reads_dropped)
        metrics.counter("sampler.retries").inc(self.retries)
        metrics.counter("sampler.reregistrations").inc(self.reregistrations)
        metrics.counter("sampler.counters_lost").inc(self.counters_lost)
        metrics.counter("sampler.counters_denied").inc(self.counters_denied)

    def _note(self, kind: str, **detail: object) -> None:
        self.fault_log.append((kind, detail))

    def _reserve_counters(self) -> None:
        """PERFCOUNTER_GET for every selected counter (paper Fig 10)."""
        for spec in self.counters:
            if self._try_reserve(spec):
                self._active.append(spec)
            elif spec not in self._denied:
                self._lose(spec)

    def _try_reserve(self, spec: pc.CounterSpec) -> bool:
        """One reservation attempt (with transient-error retries)."""
        attempt = 0
        while True:
            get = KgslPerfcounterGet(groupid=int(spec.group), countable=spec.countable)
            try:
                self.device_file.ioctl(IOCTL_KGSL_PERFCOUNTER_GET, get)
                return True
            except IoctlError as exc:
                if exc.errno == errno.EACCES:
                    # an access policy said no — that is enforcement, not
                    # contention: mask the counter permanently, never retry
                    self._deny(spec)
                    return False
                if (
                    self.fault_injector is not None
                    and exc.errno in _TRANSIENT_ERRNOS
                    and attempt < self.MAX_READ_RETRIES
                ):
                    attempt += 1
                    self.retries += 1
                    self._backoff(attempt)
                    continue
                if self.fault_injector is not None and exc.errno in _TRANSIENT_ERRNOS:
                    return False
                raise

    def _lose(self, spec: pc.CounterSpec) -> None:
        """Mark a counter unavailable; schedule re-registration."""
        if spec in self._lost:
            return
        self._lost[spec] = (self._read_index + 1, 0)
        self.counters_lost += 1
        self._note("counter_lost", counter=spec.name)

    def _deny(self, spec: pc.CounterSpec) -> None:
        """An access policy denied this counter: masked for good.

        Unlike :meth:`_lose`, denial schedules no re-registration — a
        policy denial is deterministic, and hammering the driver with
        doomed ``PERFCOUNTER_GET`` retries is exactly the auditd noise a
        real attack service would avoid.  The session continues blind;
        downstream deltas carry the counter in ``missing``.
        """
        if spec in self._denied:
            return
        self._denied.add(spec)
        self._lost.pop(spec, None)
        self.counters_denied += 1
        self._note("counter_denied", counter=spec.name)

    def _backoff(self, attempt: int) -> None:
        """Transient-failure backoff, charged in device time."""
        self.device_file.clock.advance(self.RETRY_BACKOFF_S * attempt)

    def _revive_due_counters(self) -> None:
        """Retry PERFCOUNTER_GET for lost counters whose backoff expired."""
        if not self._lost:
            return
        for spec in list(self._lost):
            due, failures = self._lost[spec]
            if self._read_index < due:
                continue
            if self._try_reserve(spec):
                del self._lost[spec]
                self._rebuild_active()
                self.reregistrations += 1
                self._note("counter_restored", counter=spec.name)
            elif spec in self._denied:
                continue  # _deny already pulled it out of the lost set
            else:
                failures += 1
                backoff = min(self.MAX_REREGISTER_BACKOFF, 2 ** failures)
                self._lost[spec] = (self._read_index + backoff, failures)

    def _resync_after_einval(self) -> bool:
        """A read hit ``EINVAL``: some register was reclaimed under us.

        Re-reserves every active counter; those that fail move to the
        lost set.  Returns True when the active set changed (so the read
        can be retried against the surviving registers).
        """
        changed = False
        for spec in list(self._active):
            if not self._try_reserve(spec):
                if spec not in self._denied:
                    self._lose(spec)
                changed = True
        if changed:
            self._rebuild_active()
        return changed

    def _rebuild_active(self) -> None:
        self._active = [
            c for c in self.counters if c not in self._lost and c not in self._denied
        ]

    # ------------------------------------------------------------------

    def read_once(self) -> Optional[Dict[pc.CounterId, int]]:
        """Blockread the available selected counters at the device clock.

        Resilient form: retries transient failures with backoff and
        resynchronizes the reservation set when a register has been
        reclaimed.  Counters currently lost are simply absent from the
        returned mapping (the caller records them as *missing*, not 0).
        Returns ``None`` when even the retries could not complete the
        read — the wakeup is abandoned, equivalent to a dropped sample.
        """
        self._read_index += 1
        attempt = 0
        while True:
            self._revive_due_counters()
            active = self._active
            if not active:
                # every register is held elsewhere: a read of nothing
                return {}
            read = KgslPerfcounterRead(
                reads=[
                    KgslPerfcounterReadGroup(groupid=int(s.group), countable=s.countable)
                    for s in active
                ]
            )
            try:
                self.device_file.ioctl(IOCTL_KGSL_PERFCOUNTER_READ, read)
            except IoctlError as exc:
                if exc.errno == errno.EACCES:
                    # access revoked mid-session (a policy now denies the
                    # read path): every active register is policy-masked
                    # and the service continues blind
                    for spec in active:
                        self._deny(spec)
                    self._rebuild_active()
                    self._note("read_denied", errno=exc.errno)
                    return None
                if self.fault_injector is None:
                    raise
                if exc.errno in _TRANSIENT_ERRNOS:
                    if attempt < self.MAX_READ_RETRIES:
                        attempt += 1
                        self.retries += 1
                        self._note("read_retry", errno=exc.errno, attempt=attempt)
                        self._backoff(attempt)
                        continue
                    # persistently busy: abandon this wakeup, keep going
                    self._note("read_abandoned", errno=exc.errno)
                    return None
                if exc.errno == _EINVAL and self._resync_after_einval():
                    continue
                raise
            return {
                (pc.CounterGroup(slot.groupid), slot.countable): slot.value
                for slot in read.reads
            }

    def _missing_now(self) -> Tuple[pc.CounterId, ...]:
        if not self._lost and not self._denied:
            return ()
        return tuple(
            sorted(
                {spec.counter_id for spec in self._lost}
                | {spec.counter_id for spec in self._denied}
            )
        )

    def _scheduling_delay(self, load: SystemLoad) -> Optional[float]:
        """Actual-minus-nominal read latency; None if the read is skipped.

        With n busy threads per core the service's chance of running on
        time falls; past ~50 % CPU utilization preemptions dominate and at
        very high load entire reads are lost — the mechanism behind the
        accuracy cliff of Fig 22a.
        """
        cpu = load.cpu_utilization
        delay = float(self.rng.exponential(_BASE_JITTER_S))
        if self.rng.random() < _COALESCE_PROB:
            delay += float(self.rng.exponential(_COALESCE_DELAY_S))
        if cpu > 0 and self.rng.random() < cpu * 0.75:
            contention = cpu * cpu
            delay += float(self.rng.exponential(_PREEMPT_DELAY_S * (0.2 + 2.0 * contention)))
        drop_prob = max(0.0, cpu - 0.45) ** 2 * 0.55
        if self.rng.random() < drop_prob:
            return None
        return delay

    def iter_samples(
        self, t0: float, t1: float, load: SystemLoad = IDLE
    ) -> Iterator[PcSample]:
        """The sampling loop over ``[t0, t1)``, one read at a time.

        This is the streaming form consumed by the session runtime: each
        ``next()`` issues (at most) one counter read, so a downstream
        stage that stops early — a launch detector escalating to attack
        mode, say — really does stop the polling, exactly like the
        Android service it models.
        """
        injector = self.fault_injector
        nominal = t0
        last_t = -1.0
        while nominal < t1:
            delay = self._scheduling_delay(load)
            if injector is not None and delay is not None:
                if injector.drop_sample():
                    delay = None
                    self._note("sample_dropped", nominal_t=nominal)
                else:
                    jitter = injector.extra_delay()
                    if jitter:
                        delay += jitter
                        self._note("clock_jitter", nominal_t=nominal, jitter_s=jitter)
            if delay is None:
                self.reads_dropped += 1
            else:
                # reads are issued by one thread, so they stay monotone even
                # when a coalesced wakeup overshoots the next nominal tick
                read_t = max(nominal + delay, last_t + 1e-5)
                self.device_file.clock.set(max(self.device_file.clock.now, read_t))
                values = self.read_once()
                if values is None:
                    # retries exhausted: the wakeup produced no data
                    self.reads_dropped += 1
                    nominal += self.interval_s
                    continue
                self.reads_issued += 1
                if injector is not None and self.device_file.clock.now > read_t:
                    # retry backoff consumed device time: the observation
                    # really happened when the read finally succeeded
                    read_t = self.device_file.clock.now
                last_t = read_t
                yield PcSample(
                    nominal_t=nominal,
                    t=read_t,
                    values=values,
                    missing=self._missing_now(),
                )
            nominal += self.interval_s

    def sample_range(
        self, t0: float, t1: float, load: SystemLoad = IDLE
    ) -> List[PcSample]:
        """Run the whole sampling loop over ``[t0, t1)`` and materialize it."""
        return list(self.iter_samples(t0, t1, load=load))


def masked_delta(prev: PcSample, cur: PcSample) -> PcDelta:
    """Difference two samples whose counter sets may disagree.

    Only counters present in *both* endpoints are differenced — a counter
    re-registered after a reclamation window would otherwise produce a
    bogus delta equal to its whole cumulative value.  Counters absent
    from either endpoint are reported in ``missing``.
    """
    common = prev.values.keys() & cur.values.keys()
    diff = pc.delta(
        {cid: prev.values[cid] for cid in common},
        {cid: cur.values[cid] for cid in common},
    )
    missing = set(prev.missing) | set(cur.missing)
    missing.update(cid for cid in prev.values.keys() ^ cur.values.keys())
    return PcDelta(
        t=cur.t,
        prev_t=prev.t,
        values=diff,
        missing=tuple(sorted(missing)),
    )


def deltas(samples: Sequence[PcSample]) -> List[PcDelta]:
    """Consecutive-sample differences — the attack's raw event stream."""
    out: List[PcDelta] = []
    for prev, cur in zip(samples, samples[1:]):
        if prev.missing or cur.missing or prev.values.keys() != cur.values.keys():
            out.append(masked_delta(prev, cur))
            continue
        diff = pc.delta(prev.values, cur.values)
        out.append(PcDelta(t=cur.t, prev_t=prev.t, values=diff))
    return out


def nonzero_deltas(samples: Sequence[PcSample]) -> List[PcDelta]:
    """Only the deltas where some counter moved (screen changed)."""
    return [d for d in deltas(samples) if d]


def nonzero_deltas_vectorized(
    samples: Sequence[PcSample], prev: Optional[PcSample] = None
) -> List[PcDelta]:
    """Vectorized :func:`nonzero_deltas`: one numpy diff over the batch.

    Produces byte-identical :class:`PcDelta` objects (same counter order,
    same wraparound handling as :func:`repro.gpu.counters.delta`) but
    differences and filters all samples in one pass, which is what keeps
    a 100-session batch runtime out of per-pair Python loops.  ``prev``
    optionally supplies the sample preceding ``samples[0]`` so chunked
    callers can difference across chunk boundaries.
    """
    chain: List[PcSample] = ([prev] if prev is not None else []) + list(samples)
    if len(chain) < 2:
        return []
    counter_ids = list(chain[0].values.keys())
    if any(s.missing for s in chain) or any(
        s.values.keys() != chain[0].values.keys() for s in chain[1:]
    ):
        # heterogeneous counter sets (reclamation in the window): fall
        # back to pairwise masked differencing — correctness over speed
        return [d for pr, cu in zip(chain, chain[1:]) for d in [masked_delta(pr, cu)] if d]
    matrix = np.array(
        [[s.values[cid] for cid in counter_ids] for s in chain], dtype=np.int64
    )
    diffs = np.diff(matrix, axis=0)
    np.add(diffs, pc.CounterBank.WRAP, out=diffs, where=diffs < 0)
    keep = np.flatnonzero(diffs.any(axis=1))
    out: List[PcDelta] = []
    for row in keep:
        values = {
            cid: int(v) for cid, v in zip(counter_ids, diffs[row])
        }
        out.append(PcDelta(t=chain[row + 1].t, prev_t=chain[row].t, values=values))
    return out


@dataclass(frozen=True)
class PowerModel:
    """Analytic battery-overhead model for the attack service (Fig 26).

    Energy = per-ioctl cost x read rate + per-inference cost x typing rate,
    plus keeping one little core awake a fraction of the time.  Reported
    as percent of a typical smartphone battery per elapsed time.
    """

    battery_mwh: float = 17000.0  # ~4500 mAh at 3.85 V
    ioctl_energy_uj: float = 22.0
    inference_energy_uj: float = 60.0
    wakeup_power_mw: float = 6.0

    def extra_consumption_percent(
        self,
        elapsed_s: float,
        interval_s: float = DEFAULT_INTERVAL_S,
        gpu_sample_power_mw: float = 8.5,
        inferences_per_s: float = 0.5,
    ) -> float:
        reads = elapsed_s / interval_s
        energy_mj = (
            reads * self.ioctl_energy_uj / 1000.0
            + elapsed_s * inferences_per_s * self.inference_energy_uj / 1000.0
        )
        energy_mwh = energy_mj / 3600.0
        standby_mwh = (self.wakeup_power_mw + gpu_sample_power_mw) * elapsed_s / 3600.0
        return 100.0 * (energy_mwh + standby_mwh) / self.battery_mwh
