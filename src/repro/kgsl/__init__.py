"""Simulated KGSL device-file interface (/dev/kgsl-3d0 + ioctl)."""
