"""KGSL ioctl request codes and data structures (paper Fig 8/9).

These mirror ``msm_kgsl.h`` from the Qualcomm KGSL driver: the perf
counter group IDs, the ``_IOWR``-style request codes for
``IOCTL_KGSL_PERFCOUNTER_GET`` / ``_READ`` / ``_PUT``, and the structs the
user passes through :func:`repro.kgsl.device_file.ioctl`.  The attack
(and the mitigation layer) interact with the simulated GPU exclusively
through this interface, the way the real attack bypasses OpenGL ES and
talks straight to ``/dev/kgsl-3d0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

# --- msm_kgsl.h constants -------------------------------------------------

KGSL_IOC_TYPE = 0x09

KGSL_PERFCOUNTER_GROUP_VPC = 0x5
KGSL_PERFCOUNTER_GROUP_RAS = 0x7
KGSL_PERFCOUNTER_GROUP_LRZ = 0x19

_IOC_NRBITS = 8
_IOC_TYPEBITS = 8
_IOC_SIZEBITS = 14
_IOC_NRSHIFT = 0
_IOC_TYPESHIFT = _IOC_NRSHIFT + _IOC_NRBITS
_IOC_SIZESHIFT = _IOC_TYPESHIFT + _IOC_TYPEBITS
_IOC_DIRSHIFT = _IOC_SIZESHIFT + _IOC_SIZEBITS
_IOC_WRITE = 1
_IOC_READ = 2


def _iowr(ioc_type: int, nr: int, size: int) -> int:
    """Linux ``_IOWR`` macro: encode direction/type/nr/size into a code."""
    return (
        ((_IOC_READ | _IOC_WRITE) << _IOC_DIRSHIFT)
        | (ioc_type << _IOC_TYPESHIFT)
        | (nr << _IOC_NRSHIFT)
        | (size << _IOC_SIZESHIFT)
    )


# struct sizes as on 64-bit Android (for request-code fidelity only)
_SIZEOF_PERFCOUNTER_GET = 12
_SIZEOF_PERFCOUNTER_PUT = 8
_SIZEOF_PERFCOUNTER_READ = 16
_SIZEOF_DEVICE_GETPROPERTY = 16

IOCTL_KGSL_PERFCOUNTER_GET = _iowr(KGSL_IOC_TYPE, 0x38, _SIZEOF_PERFCOUNTER_GET)
IOCTL_KGSL_PERFCOUNTER_PUT = _iowr(KGSL_IOC_TYPE, 0x39, _SIZEOF_PERFCOUNTER_PUT)
IOCTL_KGSL_PERFCOUNTER_READ = _iowr(KGSL_IOC_TYPE, 0x3B, _SIZEOF_PERFCOUNTER_READ)
IOCTL_KGSL_DEVICE_GETPROPERTY = _iowr(KGSL_IOC_TYPE, 0x02, _SIZEOF_DEVICE_GETPROPERTY)

#: ``KGSL_PROP_DEVICE_INFO``: chip id, device id, MMU enablement, ...
KGSL_PROP_DEVICE_INFO = 0x1


# --- structs ----------------------------------------------------------------


@dataclass
class KgslPerfcounterGet:
    """``struct kgsl_perfcounter_get``: reserve a physical counter register.

    The kernel fills ``offset`` with the assigned register on success.
    """

    groupid: int
    countable: int
    offset: int = 0
    offset_hi: int = 0


@dataclass
class KgslPerfcounterPut:
    """``struct kgsl_perfcounter_put``: release a reserved counter."""

    groupid: int
    countable: int


@dataclass
class KgslPerfcounterReadGroup:
    """``struct kgsl_perfcounter_read_group``: one counter slot in a read."""

    groupid: int
    countable: int
    value: int = 0


@dataclass
class KgslPerfcounterRead:
    """``struct kgsl_perfcounter_read``: blockread of counter values."""

    reads: List[KgslPerfcounterReadGroup] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.reads)


@dataclass
class KgslDeviceInfo:
    """``struct kgsl_devinfo`` as returned by ``KGSL_PROP_DEVICE_INFO``.

    The attack uses the chip id (e.g. ``0x06050000`` for Adreno 650) to
    narrow device recognition to the right GPU family — the same query
    every user-space GPU driver issues at startup, so it is always
    permitted to unprivileged processes.
    """

    device_id: int = 0
    chip_id: int = 0
    mmu_enabled: int = 1
    gmem_gpubaseaddr: int = 0x100000
    gpu_id: int = 0
    gmem_sizebytes: int = 1 << 20

    @property
    def adreno_model(self) -> int:
        """Marketing model number decoded from the chip id."""
        core = (self.chip_id >> 24) & 0xFF
        major = (self.chip_id >> 16) & 0xFF
        minor = (self.chip_id >> 8) & 0xFF
        return core * 100 + major * 10 + minor


@dataclass
class KgslDeviceGetProperty:
    """``struct kgsl_device_getproperty``: generic property query."""

    type: int
    value: object = None


class IoctlError(OSError):
    """An ioctl failure, carrying the errno the kernel would return."""

    def __init__(self, errno_value: int, message: str) -> None:
        super().__init__(errno_value, message)
