"""The simulated ``/dev/kgsl-3d0`` device file (paper Section 4, Fig 7).

In Android, the KGSL device file is the interface user-space GPU drivers
use to reach the hardware; because those drivers run in the calling app's
process, the file is accessible to unprivileged applications — which is
the access-control gap the paper exploits.  The simulation reproduces the
semantics the attack relies on:

* ``PERFCOUNTER_GET`` reserves a counter register and makes it countable
  (the "notify the GPU hardware to prepare the I/O" step of Fig 10);
* ``PERFCOUNTER_READ`` blockreads the *global* cumulative counter values,
  regardless of which process caused the GPU work;
* an :class:`~repro.mitigations.access_control.AccessPolicy` hook can
  deny either request, modeling the paper's RBAC / SELinux mitigation
  (Section 9.2), or perturb returned values, modeling obfuscation
  (Section 9.3).

Counter values are served from a :class:`~repro.gpu.timeline.RenderTimeline`
at the device clock's current time, so reads that land mid-render observe
partially accrued increments — the *split* factor of Section 5.1.
"""

from __future__ import annotations

import errno
from dataclasses import dataclass
from typing import Optional, Set, Tuple

from repro.gpu import counters as pc
from repro.gpu.timeline import RenderTimeline
from repro.kgsl.ioctl import (
    IOCTL_KGSL_DEVICE_GETPROPERTY,
    IOCTL_KGSL_PERFCOUNTER_GET,
    IOCTL_KGSL_PERFCOUNTER_PUT,
    IOCTL_KGSL_PERFCOUNTER_READ,
    KGSL_PROP_DEVICE_INFO,
    IoctlError,
    KgslDeviceGetProperty,
    KgslDeviceInfo,
    KgslPerfcounterGet,
    KgslPerfcounterPut,
    KgslPerfcounterRead,
)

#: KGSL device node path on Adreno phones.
KGSL_DEVICE_PATH = "/dev/kgsl-3d0"


@dataclass
class DeviceClock:
    """Simulated wall clock shared by the device file and the sampler."""

    now: float = 0.0

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("clock cannot go backwards")
        self.now += dt

    def set(self, t: float) -> None:
        if t < self.now:
            raise ValueError("clock cannot go backwards")
        self.now = t


@dataclass
class ProcessContext:
    """The SELinux-ish identity of the process issuing ioctl calls."""

    pid: int = 4242
    uid: int = 10123
    selinux_context: str = "untrusted_app"
    package: str = "com.example.benign"


class KgslDeviceFile:
    """A file descriptor on the KGSL device node.

    One instance corresponds to one ``open("/dev/kgsl-3d0", O_RDWR)``.
    """

    def __init__(
        self,
        timeline: RenderTimeline,
        clock: Optional[DeviceClock] = None,
        context: Optional[ProcessContext] = None,
        access_policy=None,
        adreno_model: int = 650,
        fault_injector=None,
        drift_injector=None,
    ) -> None:
        self.timeline = timeline
        self.clock = clock if clock is not None else DeviceClock()
        self.context = context if context is not None else ProcessContext()
        self.access_policy = access_policy
        self.adreno_model = adreno_model
        self.fault_injector = fault_injector
        self.drift_injector = drift_injector
        self._reserved: Set[Tuple[int, int]] = set()
        self._closed = False
        self.ioctl_count = 0

    # ------------------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        self._reserved.clear()

    def __enter__(self) -> "KgslDeviceFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------

    def ioctl(self, request: int, arg) -> int:
        """Dispatch an ioctl request, mutating ``arg`` like the kernel does.

        Returns 0 on success; raises :class:`IoctlError` with a POSIX errno
        on failure, mirroring the syscall contract.
        """
        if self._closed:
            raise IoctlError(errno.EBADF, "device file is closed")
        self.ioctl_count += 1
        if self.fault_injector is not None:
            # may raise a transient error or steal a reserved register,
            # exactly where the real driver's failures surface
            self.fault_injector.on_ioctl(self, request, arg)
        if request == IOCTL_KGSL_PERFCOUNTER_GET:
            return self._perfcounter_get(arg)
        if request == IOCTL_KGSL_PERFCOUNTER_PUT:
            return self._perfcounter_put(arg)
        if request == IOCTL_KGSL_PERFCOUNTER_READ:
            return self._perfcounter_read(arg)
        if request == IOCTL_KGSL_DEVICE_GETPROPERTY:
            return self._device_getproperty(arg)
        raise IoctlError(errno.ENOTTY, f"unsupported ioctl request {request:#x}")

    # ------------------------------------------------------------------

    def _check_policy(self, operation: str, groupid: int, countable: int) -> None:
        if self.access_policy is None:
            return
        self.access_policy.check(
            context=self.context, operation=operation, groupid=groupid, countable=countable
        )

    def _perfcounter_get(self, arg: KgslPerfcounterGet) -> int:
        if not isinstance(arg, KgslPerfcounterGet):
            raise IoctlError(errno.EFAULT, "PERFCOUNTER_GET needs kgsl_perfcounter_get")
        self._check_policy("get", arg.groupid, arg.countable)
        if not self._known_group(arg.groupid):
            # real driver: -EINVAL for a group the GPU does not expose
            raise IoctlError(errno.EINVAL, f"unknown counter group {arg.groupid:#x}")
        self._reserved.add((arg.groupid, arg.countable))
        # The register offset is an opaque MMIO offset in the real driver.
        arg.offset = 0x4000 + len(self._reserved) * 8
        return 0

    def _perfcounter_put(self, arg: KgslPerfcounterPut) -> int:
        if not isinstance(arg, KgslPerfcounterPut):
            raise IoctlError(errno.EFAULT, "PERFCOUNTER_PUT needs kgsl_perfcounter_put")
        self._reserved.discard((arg.groupid, arg.countable))
        return 0

    def _perfcounter_read(self, arg: KgslPerfcounterRead) -> int:
        if not isinstance(arg, KgslPerfcounterRead):
            raise IoctlError(errno.EFAULT, "PERFCOUNTER_READ needs kgsl_perfcounter_read")
        if arg.count == 0:
            raise IoctlError(errno.EINVAL, "empty read buffer")
        values = self.timeline.values_at(self.clock.now)
        for slot in arg.reads:
            self._check_policy("read", slot.groupid, slot.countable)
            key = (slot.groupid, slot.countable)
            if key not in self._reserved:
                raise IoctlError(
                    errno.EINVAL,
                    f"counter (group={slot.groupid:#x}, countable={slot.countable}) "
                    "not reserved; call PERFCOUNTER_GET first",
                )
            counter_id = self._counter_id(slot.groupid, slot.countable)
            raw = values.get(counter_id, 0)
            if self.drift_injector is not None:
                # signature drift is physical — the GPU itself runs
                # slower / renders differently — so it rewrites the raw
                # value before any mitigation or measurement fault sees it
                raw = self.drift_injector.drift_value(key, raw, self.clock.now)
            if self.access_policy is not None:
                raw = self.access_policy.filter_value(
                    context=self.context,
                    groupid=slot.groupid,
                    countable=slot.countable,
                    value=raw,
                    now=self.clock.now,
                )
            slot.value = raw
        if self.fault_injector is not None:
            self.fault_injector.after_read(arg.reads, self.clock.now)
        return 0

    def _device_getproperty(self, arg: KgslDeviceGetProperty) -> int:
        """``KGSL_PROP_DEVICE_INFO``: identify the GPU, as every user-space
        driver does at startup.  Always permitted — which is why the attack
        can use it for device recognition without privilege."""
        if not isinstance(arg, KgslDeviceGetProperty):
            raise IoctlError(errno.EFAULT, "DEVICE_GETPROPERTY needs kgsl_device_getproperty")
        if arg.type != KGSL_PROP_DEVICE_INFO:
            raise IoctlError(errno.EINVAL, f"unsupported property {arg.type:#x}")
        model = self.adreno_model
        chip_id = ((model // 100) << 24) | (((model // 10) % 10) << 16) | ((model % 10) << 8)
        arg.value = KgslDeviceInfo(device_id=0, chip_id=chip_id, gpu_id=model)
        return 0

    # ------------------------------------------------------------------

    def reserved_counters(self) -> Tuple[Tuple[int, int], ...]:
        """The (groupid, countable) registers this fd currently holds."""
        return tuple(sorted(self._reserved))

    def revoke_counter(self, key: Tuple[int, int]) -> None:
        """Another client reclaimed this register: drop the reservation.

        Subsequent PERFCOUNTER_READs that still name the register fail
        with ``EINVAL`` until the caller re-registers it, which is the
        contention behaviour the resilient sampler must survive.
        """
        self._reserved.discard(key)

    @staticmethod
    def _known_group(groupid: int) -> bool:
        return groupid in {int(group) for group in pc.CounterGroup}

    @staticmethod
    def _counter_id(groupid: int, countable: int) -> pc.CounterId:
        return (pc.CounterGroup(groupid), countable)


def open_kgsl(
    timeline: RenderTimeline,
    clock: Optional[DeviceClock] = None,
    context: Optional[ProcessContext] = None,
    access_policy=None,
    adreno_model: int = 650,
    fault_injector=None,
    drift_injector=None,
) -> KgslDeviceFile:
    """``open("/dev/kgsl-3d0", O_RDWR)`` equivalent for the simulation."""
    return KgslDeviceFile(
        timeline=timeline,
        clock=clock,
        context=context,
        access_policy=access_policy,
        adreno_model=adreno_model,
        fault_injector=fault_injector,
        drift_injector=drift_injector,
    )
