"""The KGSL sysfs interface: ``/sys/class/kgsl/kgsl-3d0/``.

The paper's footnote 10 notes that the current GPU utilization is
retrieved through ``gpu_busy_percentage`` — a world-readable sysfs node
on Qualcomm devices.  The Section 7.3 experiments use it to calibrate the
emulated background workloads, and an attacker can use it to decide when
the device is quiet enough to eavesdrop reliably.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.timeline import RenderTimeline
from repro.kgsl.device_file import DeviceClock

#: Path of the utilization node on Adreno phones.
GPU_BUSY_PATH = "/sys/class/kgsl/kgsl-3d0/gpu_busy_percentage"

#: The kernel updates the busy statistics once per devfreq interval.
UPDATE_INTERVAL_S = 0.050


@dataclass
class GpuBusyNode:
    """World-readable GPU utilization, averaged over the last interval."""

    timeline: RenderTimeline
    clock: DeviceClock
    window_s: float = UPDATE_INTERVAL_S

    def read(self) -> int:
        """The node's content: an integer percentage, like ``cat`` shows."""
        now = self.clock.now
        start = max(0.0, now - self.window_s)
        if now <= start:
            return 0
        fraction = self.timeline.busy_fraction(start, now)
        return int(round(100.0 * fraction))

    def read_text(self) -> str:
        """The raw file content (trailing newline, like sysfs)."""
        return f"{self.read()}\n"
