"""The metrics registry: counters, gauges and fixed-bucket histograms.

Instruments are get-or-create by name, so any layer can say
``registry.counter("sampler.reads_issued").inc(n)`` without coordinating
ownership.  A :class:`NullRegistry` (the module-level
:data:`NULL_REGISTRY`) hands out shared no-op instruments; every
instrumented component defaults to it, which keeps the uninstrumented
hot path free of bookkeeping — the parity contract mirrors the fault
subsystem's disabled plan.

No instrument reads a clock.  Timestamps belong to the caller's layer
(device clock, virtual clock); the registry only aggregates values it
is handed.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.spans import NULL_SPAN, Span, SpanStats

#: Default histogram bucket upper bounds for latency-style observations,
#: in seconds.  Spans Fig 25's range (the paper's <0.1 ms claim sits at
#: the 1e-4 boundary) with headroom for slow outliers.
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    1e-6,
    2.5e-6,
    5e-6,
    1e-5,
    2.5e-5,
    5e-5,
    1e-4,
    2.5e-4,
    5e-4,
    1e-3,
    1e-2,
    1e-1,
)


class Counter:
    """A monotone event tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a gauge for levels")
        self.value += n


class Gauge:
    """A last-value-wins level (throughput, wall time, utilization)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A fixed-bucket distribution; no per-observation allocation.

    ``buckets`` are inclusive upper bounds; one implicit overflow bucket
    catches everything beyond the last bound.  ``keep_samples=True``
    additionally retains the raw observations — used only where a
    deprecated raw-list accessor must keep returning exact values for
    one release (the :attr:`~repro.core.online.OnlineResult.latency`
    shim); new instruments should leave it off.
    """

    __slots__ = ("name", "buckets", "counts", "count", "sum", "min", "max", "samples")

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S,
        keep_samples: bool = False,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted, non-empty sequence")
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples: Optional[List[float]] = [] if keep_samples else None

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if self.samples is not None:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def fraction_below(self, bound: float) -> float:
        """Share of observations in buckets whose upper bound is ≤ ``bound``
        (the Fig 25 style "x % under 0.1 ms" readout)."""
        if not self.count:
            return 0.0
        covered = sum(
            n for upper, n in zip(self.buckets, self.counts) if upper <= bound
        )
        return covered / self.count

    def to_dict(self) -> Dict[str, object]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def absorb_dict(self, data: Dict[str, object]) -> None:
        """Fold an exported ``to_dict`` snapshot into this histogram.

        Bucket-wise addition is only meaningful between identically
        bucketed histograms, so a layout mismatch is an error rather
        than a silent miscount.
        """
        buckets = tuple(float(b) for b in data.get("buckets", ()))
        if buckets != self.buckets:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket layout "
                f"{list(buckets)} != {list(self.buckets)}"
            )
        counts = list(data.get("counts", ()))
        if len(counts) != len(self.counts):
            raise ValueError(f"cannot merge histogram {self.name!r}: count width mismatch")
        for i, n in enumerate(counts):
            self.counts[i] += int(n)
        self.count += int(data.get("count", 0))
        self.sum += float(data.get("sum", 0.0))
        other_min = data.get("min")
        if other_min is not None and (self.min is None or other_min < self.min):
            self.min = float(other_min)  # type: ignore[arg-type]
        other_max = data.get("max")
        if other_max is not None and (self.max is None or other_max > self.max):
            self.max = float(other_max)  # type: ignore[arg-type]


def new_latency_histogram(name: str = "latency_s", keep_samples: bool = True) -> Histogram:
    """A standalone latency histogram (default buckets), detached from any
    registry — the per-result accumulator type."""
    return Histogram(name, DEFAULT_LATENCY_BUCKETS_S, keep_samples=keep_samples)


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    name = "null"
    value = 0
    count = 0
    sum = 0.0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Get-or-create instrument store plus the span recorder.

    One registry spans one *run* (an attack, a batch, a service pass);
    the CLI and facades build a :class:`~repro.obs.manifest.RunManifest`
    from it afterwards.  Instruments are plain attributes — reading
    ``registry.counter("x").value`` is always exact, never sampled.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._span_stats: Dict[str, SpanStats] = {}
        self._span_stack: List[str] = []

    # -- instruments ----------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, buckets)
        return instrument

    # -- spans ----------------------------------------------------------

    def span(
        self,
        name: str,
        clock=None,
        trace=None,
        session: str = "",
        stage: str = "obs",
    ) -> Span:
        """A timed section.  ``clock`` is anything with a ``now`` attribute
        (virtual or device clock); ``None`` falls back to the process
        monotonic clock and therefore belongs only at run boundaries,
        never in a hot path.  With ``trace`` given, completion is also
        emitted into the shared :class:`RuntimeTrace` as a ``span``
        event, which is how spans attach to the runtime's event log.
        """
        return Span(self, name, clock=clock, trace=trace, session=session, stage=stage)

    # Span internals (called from Span.__enter__/__exit__) --------------

    def _span_enter(self, name: str) -> str:
        self._span_stack.append(name)
        return "/".join(self._span_stack)

    def _span_exit(self, path: str, duration_s: float) -> None:
        if self._span_stack:
            self._span_stack.pop()
        stats = self._span_stats.get(path)
        if stats is None:
            stats = self._span_stats[path] = SpanStats(path)
        stats.record(duration_s)

    # -- export ---------------------------------------------------------

    @property
    def spans(self) -> Dict[str, SpanStats]:
        return dict(self._span_stats)

    def snapshot(self) -> Dict[str, object]:
        """The registry's full state as plain, JSON-ready data."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.to_dict() for n, h in sorted(self._histograms.items())
            },
            "spans": {n: s.to_dict() for n, s in sorted(self._span_stats.items())},
        }

    def merge_snapshot(self, snapshot: Dict[str, object]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The merge rules match each instrument's semantics:

        * **counters** add — colliding names sum, which is exactly what
          per-shard tallies of one logical run should do;
        * **gauges** are last-value-wins, like ``set`` itself (callers
          that want a run-level value, e.g. throughput, recompute it
          after merging);
        * **histograms** add bucket-wise via :meth:`Histogram.absorb_dict`
          (identical bucket layouts required — mismatches raise);
        * **spans** add counts/totals and keep the max.

        This is how `repro.parallel` recombines worker-process
        registries into the parent run's registry before the single
        :class:`~repro.obs.manifest.RunManifest` is built.
        """
        if not self.enabled:
            return
        for name, value in (snapshot.get("counters") or {}).items():  # type: ignore[union-attr]
            self.counter(name).inc(int(value))
        for name, value in (snapshot.get("gauges") or {}).items():  # type: ignore[union-attr]
            self.gauge(name).set(float(value))
        for name, data in (snapshot.get("histograms") or {}).items():  # type: ignore[union-attr]
            self.histogram(name, buckets=data["buckets"]).absorb_dict(data)
        for name, data in (snapshot.get("spans") or {}).items():  # type: ignore[union-attr]
            stats = self._span_stats.get(name)
            if stats is None:
                stats = self._span_stats[name] = SpanStats(name)
            stats.absorb_dict(data)

    def manifest(self, config=None, **meta):
        """Build the :class:`~repro.obs.manifest.RunManifest` for this run."""
        from repro.obs.manifest import RunManifest

        return RunManifest.from_registry(self, config=config, **meta)


class NullRegistry(MetricsRegistry):
    """The default no-op registry: shared inert instruments, no spans.

    Everything returns immediately without allocating, so components
    instrumented against :data:`NULL_REGISTRY` run the same instruction
    stream as uninstrumented code up to one attribute load and call.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=DEFAULT_LATENCY_BUCKETS_S):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def span(self, name, clock=None, trace=None, session="", stage="obs"):
        return NULL_SPAN


#: The process-default registry — inert.  Pass a real
#: :class:`MetricsRegistry` to any facade/pipeline entry point to turn
#: instrumentation on for that run.
NULL_REGISTRY = NullRegistry()


def resolve_registry(
    metrics: Union[MetricsRegistry, None],
) -> MetricsRegistry:
    """Normalize the public ``metrics`` argument (``None`` → no-op)."""
    if metrics is None:
        return NULL_REGISTRY
    if not isinstance(metrics, MetricsRegistry):
        raise TypeError(
            f"metrics must be a MetricsRegistry or None, got {type(metrics).__name__}"
        )
    return metrics
