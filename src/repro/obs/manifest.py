"""Run manifests: one JSON document per run, config + metrics + spans.

A :class:`RunManifest` is the exportable record of everything one run
measured about itself: the resolved configuration it ran under, every
counter/gauge/histogram in the registry, and the span rollups.  The CLI
writes one via ``--metrics-out``, the :mod:`repro.api` facades return
one alongside their results, and the benchmarks drop ``BENCH_*.json``
manifests next to their output so the performance trajectory of the
repo is recorded run over run.

The schema is deliberately flat and stable (see
``docs/observability.md``)::

    {
      "schema": "repro.obs/1",
      "meta":    {...free-form strings/numbers...},
      "config":  {...AttackConfig.to_dict() or any mapping...},
      "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}},
      "spans":   {"path": {"count": n, "total_s": s, ...}, ...}
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

#: Manifest schema identifier; bump on incompatible layout changes.
SCHEMA = "repro.obs/1"


@dataclass
class RunManifest:
    """Serializable observability record of one run."""

    config: Dict[str, object] = field(default_factory=dict)
    metrics: Dict[str, object] = field(default_factory=dict)
    spans: Dict[str, object] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_registry(
        cls, registry, config: Optional[Mapping[str, object]] = None, **meta: object
    ) -> "RunManifest":
        """Snapshot a :class:`~repro.obs.registry.MetricsRegistry`.

        ``config`` is any JSON-ready mapping (typically
        ``AttackConfig.to_dict()``); keyword arguments become free-form
        ``meta`` entries (command name, batch size, bench id...).
        """
        snapshot = registry.snapshot()
        return cls(
            config=dict(config) if config is not None else {},
            metrics={
                "counters": snapshot["counters"],
                "gauges": snapshot["gauges"],
                "histograms": snapshot["histograms"],
            },
            spans=snapshot["spans"],
            meta=dict(meta),
        )

    @classmethod
    def merge(
        cls,
        manifests: "Sequence[RunManifest]",
        config: Optional[Mapping[str, object]] = None,
        **meta: object,
    ) -> "RunManifest":
        """Recombine per-shard manifests into one run-level manifest.

        Uses the same rules as
        :meth:`~repro.obs.registry.MetricsRegistry.merge_snapshot`:
        counters sum (colliding names add), gauges are last-wins,
        histograms add bucket-wise (layout mismatches raise), spans add
        counts/totals and keep the max.  ``config``/``meta`` default to
        the first manifest's values when not given.
        """
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        for manifest in manifests:
            registry.merge_snapshot(
                {
                    "counters": manifest.counters,
                    "gauges": manifest.gauges,
                    "histograms": manifest.histograms,
                    "spans": manifest.spans,
                }
            )
        if config is None and manifests:
            config = manifests[0].config
        if not meta and manifests:
            meta = dict(manifests[0].meta)  # type: ignore[assignment]
        return cls.from_registry(registry, config=config, **meta)

    # -- convenience accessors ------------------------------------------

    @property
    def counters(self) -> Dict[str, int]:
        return self.metrics.get("counters", {})  # type: ignore[return-value]

    @property
    def gauges(self) -> Dict[str, float]:
        return self.metrics.get("gauges", {})  # type: ignore[return-value]

    @property
    def histograms(self) -> Dict[str, Dict[str, object]]:
        return self.metrics.get("histograms", {})  # type: ignore[return-value]

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA,
            "meta": self.meta,
            "config": self.config,
            "metrics": self.metrics,
            "spans": self.spans,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunManifest":
        if data.get("schema") != SCHEMA:
            raise ValueError(f"unsupported manifest schema {data.get('schema')!r}")
        return cls(
            config=dict(data.get("config") or {}),  # type: ignore[arg-type]
            metrics=dict(data.get("metrics") or {}),  # type: ignore[arg-type]
            spans=dict(data.get("spans") or {}),  # type: ignore[arg-type]
            meta=dict(data.get("meta") or {}),  # type: ignore[arg-type]
        )

    @classmethod
    def load(cls, path) -> "RunManifest":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))
