"""Nestable timed sections recorded against a metrics registry.

A span brackets one section of work — a chunk of sampler reads, a
vectorized delta extraction, an engine finish, a service report — and
rolls its durations up per *path* (nesting joins names with ``/``, so a
``source.extract`` inside ``pipeline.attack`` aggregates under
``pipeline.attack/source.extract``).

Spans are clock-agnostic: callers hand in the clock that drives their
layer (the runtime's :class:`~repro.runtime.clock.VirtualClock` or a
device clock), so instrumented simulation code performs **zero**
wall-clock reads.  Only when no clock is supplied does a span fall back
to ``time.perf_counter`` — acceptable at run boundaries, never inside
the sampling or inference loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional


@dataclass
class SpanStats:
    """Rollup of every completed span sharing one path."""

    path: str
    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    def record(self, duration_s: float) -> None:
        self.count += 1
        self.total_s += duration_s
        if duration_s > self.max_s:
            self.max_s = duration_s

    def absorb_dict(self, data: dict) -> None:
        """Fold another rollup's exported ``to_dict`` into this one —
        counts and totals add, the max wins.  Used when per-shard
        registries are merged back into a parent run."""
        self.count += int(data.get("count", 0))
        self.total_s += float(data.get("total_s", 0.0))
        self.max_s = max(self.max_s, float(data.get("max_s", 0.0)))

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "max_s": self.max_s,
        }


class Span:
    """One live timed section (context manager); see module docstring.

    Must not bracket a generator ``yield`` — the registry's nesting
    stack assumes strictly bracketed enter/exit, which interleaved
    sessions on the runtime would violate.
    """

    __slots__ = ("_registry", "name", "_clock", "_trace", "_session", "_stage", "_path", "_start")

    def __init__(
        self,
        registry,
        name: str,
        clock=None,
        trace=None,
        session: str = "",
        stage: str = "obs",
    ) -> None:
        self._registry = registry
        self.name = name
        self._clock = clock
        self._trace = trace
        self._session = session
        self._stage = stage
        self._path: Optional[str] = None
        self._start = 0.0

    def _now(self) -> float:
        clock = self._clock
        return clock.now if clock is not None else time.perf_counter()

    def __enter__(self) -> "Span":
        self._path = self._registry._span_enter(self.name)
        self._start = self._now()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = self._now()
        duration = max(0.0, end - self._start)
        self._registry._span_exit(self._path, duration)
        if self._trace is not None:
            self._trace.emit(
                end,
                self._session,
                self._stage,
                "span",
                name=self._path,
                duration_s=duration,
            )


class _NullSpan:
    """The shared no-op span handed out by the null registry."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()
