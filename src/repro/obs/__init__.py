"""Unified observability: one registry, one span log, one manifest.

Before this package, evidence for the paper's quantitative claims was
scattered — sampler retry tallies on :class:`~repro.kgsl.sampler.
PerfCounterSampler` attributes, inference latencies in per-result lists,
fault events in the :class:`~repro.runtime.trace.RuntimeTrace` — with no
single place to read, export, or regress them.  ``repro.obs`` is that
place:

* :class:`MetricsRegistry` — process-wide *but injectable* instrument
  store: monotone counters, last-value gauges, and fixed-bucket
  histograms.  The default is :data:`NULL_REGISTRY`, whose instruments
  are shared no-ops, so uninstrumented runs stay byte-identical to a
  build without this package (parity-tested, same contract as the fault
  subsystem's disabled plan).
* :meth:`MetricsRegistry.span` — lightweight nestable timed sections.
  Spans read *no wall clock* unless explicitly given none: callers pass
  the :class:`~repro.runtime.clock.VirtualClock` (or device clock)
  driving their layer, and may attach completions to the shared
  :class:`~repro.runtime.trace.RuntimeTrace`.
* :class:`RunManifest` — serializable config + metrics + span rollup of
  one run; written by the CLI's ``--metrics-out`` and returned by the
  :mod:`repro.api` facades, and emitted by the benchmarks as
  ``BENCH_*.json`` so the perf trajectory is recorded.

See ``docs/observability.md`` for the manifest schema and wiring.
"""

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    new_latency_histogram,
    resolve_registry,
)
from repro.obs.manifest import RunManifest
from repro.obs.spans import NULL_SPAN, Span, SpanStats

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_S",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NullRegistry",
    "RunManifest",
    "Span",
    "SpanStats",
    "new_latency_histogram",
    "resolve_registry",
]
