"""Deterministic fault injection at the KGSL boundary (Sections 5.1/7).

On a real device the attack runs unprivileged and shares the GPU driver
with every other process, so the measurement layer is *not* infallible:

* ``ioctl()`` calls fail transiently (``EIO``/``EBUSY``) when the driver
  is servicing a higher-priority client or the device is suspending;
* performance-counter registers are a shared, finite resource — another
  process can reclaim one mid-session, after which reads of that slot
  fail until the attacker re-registers it (and re-registration itself
  fails while the other client holds the register);
* sampling wakeups are dropped or deferred under load; and
* returned values are occasionally corrupted by concurrent register
  reprogramming.

This module injects all of those failure modes into the simulated
``/dev/kgsl-3d0`` interface, seeded and fully deterministic, so the
resilience of the sampling→inference path can be tested and benchmarked.
A :class:`FaultPlan` is pure configuration (serializable, hashable); a
:class:`FaultInjector` is the per-device-file runtime state built from a
plan.  With no plan installed the fast path is untouched — the clean
attack output is byte-identical to a build without this module.

Profiles
--------

Three named profiles gate the CI fault matrix (see
``.github/workflows/ci.yml``), selected via ``REPRO_FAULT_PROFILE``:

* ``none``  — no faults (the default; parity-tested);
* ``mild``  — ≤5 % transient ioctl failures, at most one counter
  reclamation per session, light jitter: sessions must still complete
  and stay accurate;
* ``harsh`` — heavy failure rates, unlimited reclamations, value
  corruption: sessions must complete without exceptions and *report*
  their degradation, but accuracy is allowed to fall.
"""

from __future__ import annotations

import errno
import os
from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.kgsl.ioctl import (
    IOCTL_KGSL_PERFCOUNTER_GET,
    IOCTL_KGSL_PERFCOUNTER_READ,
    IoctlError,
)

#: Environment variable selecting the default fault profile ("none",
#: "mild" or "harsh"); consumed by :func:`plan_from_env`.
FAULT_PROFILE_ENV = "REPRO_FAULT_PROFILE"

#: errno values considered *transient* — the resilient sampler retries
#: these with backoff instead of failing the session.
TRANSIENT_ERRNOS = (errno.EIO, errno.EBUSY)


@dataclass
class FaultStats:
    """Exact tally of every fault actually injected by one injector."""

    read_errors: int = 0
    get_errors: int = 0
    reclaims: int = 0
    drops: int = 0
    jitter_events: int = 0
    corruptions: int = 0

    @property
    def total(self) -> int:
        return (
            self.read_errors
            + self.get_errors
            + self.reclaims
            + self.drops
            + self.jitter_events
            + self.corruptions
        )

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, deterministic fault configuration for one attack run.

    All probabilities are per-event (per counter read, per reservation,
    per sampling wakeup); reclamation is a Poisson process in device
    time.  The same plan with the same seed always injects the same
    fault sequence, which is what makes degraded runs reproducible and
    diffable.
    """

    seed: int = 0
    #: Probability a PERFCOUNTER_READ fails transiently (EIO/EBUSY).
    read_error_prob: float = 0.0
    #: Probability a PERFCOUNTER_GET fails transiently (EBUSY).
    get_error_prob: float = 0.0
    #: Counter-register reclamations per second of device time.
    reclaim_rate_hz: float = 0.0
    #: How long a reclaimed register stays held by the other client.
    reclaim_window_s: float = 0.4
    #: Maximum reclamations per injector (None = unlimited).
    max_reclaims: Optional[int] = None
    #: Probability a sampling wakeup is silently dropped.
    drop_prob: float = 0.0
    #: Probability a wakeup is deferred by extra (exponential) jitter.
    jitter_prob: float = 0.0
    #: Mean of the injected extra delay when jitter fires.
    jitter_s: float = 0.0
    #: Probability one read slot returns a corrupted value.
    corrupt_prob: float = 0.0
    #: Relative std-dev of the corruption multiplier.
    corrupt_rel: float = 0.25
    #: Informational profile name ("" for hand-built plans).
    profile: str = ""

    def __post_init__(self) -> None:
        for name in ("read_error_prob", "get_error_prob", "drop_prob", "jitter_prob", "corrupt_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in ("reclaim_rate_hz", "reclaim_window_s", "jitter_s", "corrupt_rel"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.max_reclaims is not None and self.max_reclaims < 0:
            raise ValueError("max_reclaims must be None or >= 0")

    @property
    def enabled(self) -> bool:
        """Whether this plan can inject anything at all."""
        return any(
            getattr(self, name) > 0
            for name in (
                "read_error_prob",
                "get_error_prob",
                "reclaim_rate_hz",
                "drop_prob",
                "jitter_prob",
                "corrupt_prob",
            )
        )

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {f.name: getattr(self, f.name) for f in fields(self)}
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {sorted(unknown)}")
        return cls(**dict(data))  # type: ignore[arg-type]

    # -- profiles -------------------------------------------------------

    @classmethod
    def from_profile(cls, name: str, seed: int = 0) -> "FaultPlan":
        """One of the named CI profiles: ``none``, ``mild``, ``harsh``."""
        try:
            base = PROFILES[name]
        except KeyError:
            raise ValueError(
                f"unknown fault profile {name!r}; available: {sorted(PROFILES)}"
            ) from None
        return replace(base, seed=seed)

    def injector(self, seed_offset: int = 0) -> Optional["FaultInjector"]:
        """Build the per-device-file runtime for this plan.

        Returns ``None`` for a plan that cannot inject anything, so the
        sampling fast path stays entirely hook-free when faults are off.
        ``seed_offset`` (typically the session seed) decorrelates
        concurrent sessions while keeping each one deterministic.
        """
        if not self.enabled:
            return None
        return FaultInjector(self, seed_offset=seed_offset)


#: The named profiles the CI fault matrix runs.
PROFILES: Dict[str, FaultPlan] = {
    "none": FaultPlan(profile="none"),
    "mild": FaultPlan(
        read_error_prob=0.05,
        get_error_prob=0.05,
        reclaim_rate_hz=0.12,
        reclaim_window_s=0.35,
        max_reclaims=1,
        drop_prob=0.004,
        jitter_prob=0.04,
        jitter_s=0.002,
        corrupt_prob=0.0,
        profile="mild",
    ),
    "harsh": FaultPlan(
        read_error_prob=0.25,
        get_error_prob=0.25,
        reclaim_rate_hz=0.6,
        reclaim_window_s=1.0,
        max_reclaims=None,
        drop_prob=0.05,
        jitter_prob=0.25,
        jitter_s=0.010,
        corrupt_prob=0.02,
        corrupt_rel=0.5,
        profile="harsh",
    ),
}


def plan_from_env(default: str = "none") -> Optional[FaultPlan]:
    """The :class:`FaultPlan` selected by ``REPRO_FAULT_PROFILE``.

    Returns ``None`` when the profile is ``none`` (or unset), so callers
    can use the absence of a plan as "no fault machinery at all".
    """
    name = os.environ.get(FAULT_PROFILE_ENV, default).strip().lower() or default
    plan = FaultPlan.from_profile(name)
    return plan if plan.enabled else None


def resolve_plan(
    fault_plan: Union["FaultPlan", None, str] = "auto",
) -> Optional[FaultPlan]:
    """Normalize the public ``fault_plan`` argument.

    ``"auto"`` defers to :func:`plan_from_env`; a profile name selects
    that profile; ``None`` disables faults regardless of environment; a
    :class:`FaultPlan` is used as-is (``None`` if it cannot inject).
    """
    if fault_plan is None:
        return None
    if isinstance(fault_plan, str):
        if fault_plan == "auto":
            return plan_from_env()
        plan = FaultPlan.from_profile(fault_plan)
        return plan if plan.enabled else None
    return fault_plan if fault_plan.enabled else None


class FaultInjector:
    """Per-device-file fault runtime built from a :class:`FaultPlan`.

    The injector owns its own RNG stream (independent of the sampler's
    scheduling RNG, so enabling a zero-probability plan perturbs
    nothing) and all reclamation state.  It is consulted by
    :class:`~repro.kgsl.device_file.KgslDeviceFile` on every ioctl and
    by :class:`~repro.kgsl.sampler.PerfCounterSampler` on every wakeup.
    """

    def __init__(self, plan: FaultPlan, seed_offset: int = 0) -> None:
        self.plan = plan
        self.rng = np.random.default_rng((plan.seed, seed_offset))
        self.stats = FaultStats()
        #: reclaimed register -> device time at which it is released
        self._reclaimed: Dict[Tuple[int, int], float] = {}
        self._last_reclaim_check: Optional[float] = None
        self._reclaims_done = 0

    # -- device-file hooks ---------------------------------------------

    def on_ioctl(self, device, request: int, arg) -> None:
        """Pre-dispatch hook; may raise a transient :class:`IoctlError`
        or steal a reserved counter register (reclamation)."""
        now = device.clock.now
        if request == IOCTL_KGSL_PERFCOUNTER_READ:
            self._maybe_reclaim(device, now)
            if self.plan.read_error_prob and self.rng.random() < self.plan.read_error_prob:
                self.stats.read_errors += 1
                err = errno.EIO if self.rng.random() < 0.5 else errno.EBUSY
                raise IoctlError(err, "injected transient PERFCOUNTER_READ failure")
        elif request == IOCTL_KGSL_PERFCOUNTER_GET:
            key = (arg.groupid, arg.countable)
            until = self._reclaimed.get(key)
            if until is not None:
                if now < until:
                    raise IoctlError(
                        errno.EBUSY, "counter register held by another client"
                    )
                del self._reclaimed[key]
            if self.plan.get_error_prob and self.rng.random() < self.plan.get_error_prob:
                self.stats.get_errors += 1
                raise IoctlError(
                    errno.EBUSY, "injected transient PERFCOUNTER_GET failure"
                )

    def after_read(self, slots, now: float) -> None:
        """Post-read hook: occasional value corruption."""
        if not self.plan.corrupt_prob:
            return
        for slot in slots:
            if self.rng.random() < self.plan.corrupt_prob:
                self.stats.corruptions += 1
                factor = 1.0 + float(self.rng.normal(0.0, self.plan.corrupt_rel))
                slot.value = max(0, int(slot.value * factor))

    def _maybe_reclaim(self, device, now: float) -> None:
        """Poisson-trigger a counter-register reclamation."""
        if not self.plan.reclaim_rate_hz:
            return
        if self.plan.max_reclaims is not None and self._reclaims_done >= self.plan.max_reclaims:
            return
        last = self._last_reclaim_check
        self._last_reclaim_check = now
        if last is None or now <= last:
            return
        if self.rng.random() >= min(1.0, self.plan.reclaim_rate_hz * (now - last)):
            return
        candidates = [
            key for key in device.reserved_counters() if key not in self._reclaimed
        ]
        if not candidates:
            return
        key = candidates[int(self.rng.integers(len(candidates)))]
        self._reclaimed[key] = now + self.plan.reclaim_window_s
        device.revoke_counter(key)
        self._reclaims_done += 1
        self.stats.reclaims += 1

    # -- sampler hooks --------------------------------------------------

    def drop_sample(self) -> bool:
        """Whether this sampling wakeup is lost entirely."""
        if self.plan.drop_prob and self.rng.random() < self.plan.drop_prob:
            self.stats.drops += 1
            return True
        return False

    def extra_delay(self) -> float:
        """Additional scheduling delay injected into this wakeup."""
        if self.plan.jitter_prob and self.rng.random() < self.plan.jitter_prob:
            self.stats.jitter_events += 1
            return float(self.rng.exponential(self.plan.jitter_s))
        return 0.0

    # ------------------------------------------------------------------

    @property
    def reclaimed_now(self) -> Tuple[Tuple[int, int], ...]:
        """Registers currently held by the simulated other client."""
        return tuple(sorted(self._reclaimed))
