"""The Offline Phase: bot-driven data collection and model training.

Section 3.2 / Section 6 of the paper: on attacker-controlled rooted
devices, a bot emulates every key press over each (device model,
configuration) pair, the resulting GPU PC data is labeled, and a
classification model is built and preloaded into the attack application.

Here the "rooted device" is the simulator itself — the trainer compiles
bot scripts on a :class:`~repro.android.device.VictimDevice`, samples the
counters exactly as the online attack would, and labels each PC value
change from the ground-truth frame log (which the attacker has, because
they control the training device).  Ambiguous windows (two frames merged
in one read, partially accrued renders) are discarded, like any sane data
cleaning pass would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.android.apps import AppSpec
from repro.android.device import VictimDevice
from repro.android.events import (
    AppSwitchAway,
    AppSwitchBack,
    BackspacePress,
    KeyPress,
    NotificationArrival,
    UserEvent,
)
from repro.android.glyphs import KEYBOARD_CHARACTERS
from repro.android.os_config import DeviceConfig
from repro.core import features
from repro.core.classifier import ClassificationModel, build_model
from repro.gpu.timeline import FrameRender, RenderTimeline
from repro.kgsl.device_file import DeviceClock, open_kgsl
from repro.kgsl.sampler import DEFAULT_INTERVAL_S, PcSample, PerfCounterSampler, deltas


def frame_to_class_label(frame_label: str) -> Optional[str]:
    """Map a ground-truth frame label to a training class label.

    Returns None for frames the classifier should not learn as a class
    (handled by other subsystems or too rare to matter).
    """
    head, _, rest = frame_label.partition(":")
    if head in ("press", "press_dup"):
        return f"key:{rest}"
    if head == "echo":
        return f"field:{rest}:on"
    if head == "cursor_blink":
        return f"field:{rest}"
    if head == "backspace":
        return f"field:{rest}:on"
    if head == "dismiss":
        return f"reject:dismiss:{rest}"
    if head == "notification":
        return "reject:notification"
    if head.startswith("shade") or head.startswith("switch"):
        return "reject:transient"
    if head in ("other_app", "initial") or head.startswith("anim"):
        return "reject:transient"
    return None


@dataclass
class TrainingData:
    """Labeled feature vectors collected during the offline phase."""

    vectors_by_label: Dict[str, List[np.ndarray]] = field(default_factory=dict)
    discarded_windows: int = 0
    clean_windows: int = 0

    def add(self, label: str, vector: np.ndarray) -> None:
        self.vectors_by_label.setdefault(label, []).append(vector)

    def merge(self, other: "TrainingData") -> None:
        for label, vectors in other.vectors_by_label.items():
            self.vectors_by_label.setdefault(label, []).extend(vectors)
        self.discarded_windows += other.discarded_windows
        self.clean_windows += other.clean_windows

    def counts(self) -> Dict[str, int]:
        return {label: len(v) for label, v in self.vectors_by_label.items()}


def label_samples(
    timeline: RenderTimeline, samples: Sequence[PcSample], data: TrainingData
) -> None:
    """Label each inter-sample delta from the ground-truth frame log."""
    frames = timeline.frames
    starts = np.array([f.start_s for f in frames])
    ends = np.array([f.end_s for f in frames])
    for prev, cur, delta in zip(samples, samples[1:], deltas(samples)):
        if not delta:
            continue
        # frames contributing to this window: any overlap with (prev.t, cur.t]
        mask = (starts < cur.t) & (ends > prev.t)
        involved: List[FrameRender] = [frames[i] for i in np.flatnonzero(mask)]
        if len(involved) != 1:
            data.discarded_windows += 1
            continue
        frame = involved[0]
        if frame.start_s <= prev.t or frame.end_s > cur.t:
            # partially accrued (split across reads) — discard for training
            data.discarded_windows += 1
            continue
        label = frame_to_class_label(frame.label)
        if label is None:
            data.discarded_windows += 1
            continue
        data.clean_windows += 1
        data.add(label, features.vectorize(delta))


class OfflineTrainer:
    """Builds the classification model for one (configuration, app) pair."""

    def __init__(
        self,
        config: DeviceConfig,
        app: AppSpec,
        rng: Optional[np.random.Generator] = None,
        interval_s: float = DEFAULT_INTERVAL_S,
    ) -> None:
        self.config = config
        self.app = app
        self.rng = rng if rng is not None else np.random.default_rng(7)
        self.interval_s = interval_s

    @property
    def model_key(self) -> str:
        return f"{self.config.config_key()}/{self.app.name}"

    def trainable_characters(self) -> List[str]:
        """Fig 18 characters that exist on this keyboard's layout."""
        from repro.android.display import Display
        from repro.android.keyboard import KeyboardLayout

        layout = KeyboardLayout(self.config.keyboard, self.config.display)
        return [c for c in KEYBOARD_CHARACTERS if layout.has_key(c)]

    # ------------------------------------------------------------------

    def _run_session(self, events: Sequence[UserEvent], end_time_s: float, data: TrainingData) -> None:
        device = VictimDevice(self.config, self.app, rng=self.rng)
        trace = device.compile(events, end_time_s=end_time_s)
        clock = DeviceClock()
        kgsl = open_kgsl(trace.timeline, clock=clock)
        sampler = PerfCounterSampler(
            kgsl, interval_s=self.interval_s, rng=self.rng
        )
        samples = sampler.sample_range(0.0, end_time_s)
        label_samples(trace.timeline, samples, data)

    def _key_sweep_events(self, chars: Sequence[str], repeats: int) -> Tuple[List[UserEvent], float]:
        """Press + backspace each character ``repeats`` times."""
        events: List[UserEvent] = []
        t = 0.8
        for _ in range(repeats):
            for char in chars:
                events.append(KeyPress(t=t, char=char, duration=0.08))
                events.append(BackspacePress(t=t + 0.26))
                t += 0.55
        return events, t + 0.5

    def _ladder_events(self, length: int = 16) -> Tuple[List[UserEvent], float]:
        """Type a full-length string slowly to cover field:1..length."""
        events: List[UserEvent] = []
        chars = self.trainable_characters()
        t = 0.8
        for i in range(length):
            events.append(KeyPress(t=t, char=chars[i % len(chars)], duration=0.08))
            t += 1.35  # slow enough to catch cursor blinks at each length
        return events, t + 2.0

    def _noise_events(self) -> Tuple[List[UserEvent], float]:
        events: List[UserEvent] = [
            NotificationArrival(t=1.1),
            NotificationArrival(t=2.3),
            AppSwitchAway(t=4.0),
            AppSwitchBack(t=7.5),
            NotificationArrival(t=9.2),
        ]
        return events, 11.0

    # ------------------------------------------------------------------

    def collect(self, sweep_repeats: int = 4) -> TrainingData:
        """Run all offline data-collection sessions."""
        data = TrainingData()
        chars = self.trainable_characters()
        events, end = self._key_sweep_events(chars, sweep_repeats)
        self._run_session(events, end, data)
        events, end = self._ladder_events()
        self._run_session(events, end, data)
        events, end = self._noise_events()
        self._run_session(events, end, data)
        return data

    def train(
        self, data: Optional[TrainingData] = None, sweep_repeats: int = 4
    ) -> ClassificationModel:
        """Collect (if needed) and fit the classification model."""
        if data is None:
            data = self.collect(sweep_repeats=sweep_repeats)
        missing = [
            c for c in self.trainable_characters() if f"key:{c}" not in data.vectors_by_label
        ]
        if missing:
            # a couple of sweeps can lose single keys to unlucky merges;
            # rerun one extra sweep for the missing ones
            events, end = self._key_sweep_events(missing, repeats=3)
            self._run_session(events, end, data)
        return build_model(
            data.vectors_by_label,
            model_key=self.model_key,
            metadata={
                "config": self.config.config_key(),
                "app": self.app.name,
                "clean_windows": data.clean_windows,
                "discarded_windows": data.discarded_windows,
            },
        )
