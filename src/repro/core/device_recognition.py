"""Device/configuration recognition (paper Section 3.2).

"These readings will be first used to recognize the current device model
and configuration, and then applied to the corresponding classification
model."  Absolute counter values differ across GPUs (tile geometry),
resolutions, keyboards and OS versions, so the recurring screen changes of
the login screen — cursor blinks, popup dismissals, key presses — land
near the centroids of exactly one stored model.

The recognizer scores every stored model by how well the first observed PC
changes snap onto its centroids, and picks the best-scoring model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core import features
from repro.core.classifier import ClassificationModel
from repro.core.model_store import ModelStore
from repro.kgsl.sampler import PcDelta


@dataclass(frozen=True)
class RecognitionResult:
    """Outcome of device/configuration recognition."""

    model_key: str
    score: float
    scores: Dict[str, float]

    @property
    def margin(self) -> float:
        """Gap between the best and second-best score (confidence)."""
        ranked = sorted(self.scores.values())
        if len(ranked) < 2:
            return float("inf")
        return ranked[1] - ranked[0]


class DeviceRecognizer:
    """Matches observed PC changes against all preloaded models."""

    def __init__(self, store: ModelStore, max_deltas: int = 40, clip: float = 25.0) -> None:
        if len(store) == 0:
            raise ValueError("model store is empty")
        self.store = store
        self.max_deltas = max_deltas
        self.clip = clip

    def _score(self, model: ClassificationModel, vectors: np.ndarray) -> float:
        scaled_centroids = model.centroids / model.scale
        scaled = vectors / model.scale
        # distance of each observation to its nearest centroid, clipped so
        # a few out-of-vocabulary events cannot dominate the score
        total = 0.0
        for row in scaled:
            diffs = scaled_centroids - row
            dist = float(np.min(np.sqrt(np.einsum("ij,ij->i", diffs, diffs))))
            total += min(dist, self.clip)
        return total / len(scaled)

    def recognize(
        self, deltas: Sequence[PcDelta], adreno_model: Optional[int] = None
    ) -> RecognitionResult:
        """Pick the stored model whose centroids best explain ``deltas``.

        Args:
            deltas: the first nonzero PC changes observed on the victim.
            adreno_model: GPU model from ``KGSL_PROP_DEVICE_INFO`` (the
                unprivileged chip-id query); when given, only models for
                phones with that GPU are considered.
        """
        observed = [d for d in deltas if d][: self.max_deltas]
        if not observed:
            raise ValueError("no nonzero PC changes to recognize from")
        candidates = list(self.store)
        if adreno_model is not None:
            from repro.android.os_config import PHONE_MODELS

            matching = [
                model
                for model in candidates
                if PHONE_MODELS.get(str(model.metadata.get("config", "")).split("/")[0])
                and PHONE_MODELS[str(model.metadata["config"]).split("/")[0]].gpu.model
                == adreno_model
            ]
            if matching:
                candidates = matching
        vectors = features.vectorize_many(observed)
        scores = {model.model_key: self._score(model, vectors) for model in candidates}
        best_key = min(scores, key=scores.get)
        return RecognitionResult(model_key=best_key, score=scores[best_key], scores=scores)
