"""Application-switch recognition (paper Section 5.2, Fig 13).

App switches produce "fierce value changes ... at the beginning and end of
the app switch procedure, and the interval between these value changes
(e.g. <50 ms) is much smaller than that between human typings".  The
detector recognizes such bursts and tracks whether the user is currently
in the target application, so the online engine only eavesdrops while
they are.

Bursts toggle the away/in-target state: the overview animation plays once
when leaving and once when returning (pulling the notification shade also
produces a pair of bursts, so the state survives shade views).  As a
safety net, any PC change that classifies into the target app's text-field
family forces the state back to in-target — only the target app's login
screen produces those changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.classifier import Classification
from repro.kgsl.sampler import PcDelta

#: Maximum gap between burst frames (paper: "<50 ms").
BURST_GAP_S = 0.050
#: Consecutive rapid large changes needed to call a burst.
MIN_BURST_LENGTH = 3
#: Quiet time after which a burst is considered finished.
BURST_COOLDOWN_S = 0.15


@dataclass
class SwitchObservation:
    """Detector verdict for one PC value change."""

    suppress: bool
    in_target: bool
    in_burst: bool


class AppSwitchDetector:
    """Stateful burst detector over the nonzero-delta stream."""

    def __init__(
        self,
        big_threshold: float,
        burst_gap_s: float = BURST_GAP_S,
        min_burst_length: int = MIN_BURST_LENGTH,
        cooldown_s: float = BURST_COOLDOWN_S,
    ) -> None:
        if big_threshold <= 0:
            raise ValueError("big_threshold must be positive")
        self.big_threshold = big_threshold
        self.burst_gap_s = burst_gap_s
        self.min_burst_length = min_burst_length
        self.cooldown_s = cooldown_s

        self.in_target = True
        self.bursts_seen = 0
        self._run_length = 0
        self._last_big_t: Optional[float] = None
        self._burst_active = False

    def _finish_burst_if_quiet(self, t: float) -> None:
        if (
            self._burst_active
            and self._last_big_t is not None
            and t - self._last_big_t > self.cooldown_s
        ):
            self._burst_active = False
            self._run_length = 0
            self.in_target = not self.in_target
            self.bursts_seen += 1

    def observe(
        self,
        delta: PcDelta,
        classification: Classification,
        magnitude: Optional[float] = None,
    ) -> SwitchObservation:
        """Update state with one nonzero delta; say whether to suppress it.

        ``magnitude`` overrides the raw total — the engine passes the
        ambient-corrected magnitude so a steady background workload does
        not masquerade as an app-switch burst.
        """
        t = delta.t
        self._finish_burst_if_quiet(t)

        is_big = (magnitude if magnitude is not None else delta.total) >= self.big_threshold
        if is_big:
            if self._last_big_t is not None and t - self._last_big_t <= self.burst_gap_s:
                self._run_length += 1
            else:
                self._run_length = 1
            self._last_big_t = t
            if self._run_length >= self.min_burst_length:
                self._burst_active = True
        elif self._burst_active and self._last_big_t is not None:
            # small changes inside an active burst window do not end it;
            # quiet time does (checked on the next observation)
            pass

        # Self-healing: the text-field family only exists in the target app.
        if classification.is_field and not self._burst_active:
            self.in_target = True

        suppress = self._burst_active or not self.in_target
        return SwitchObservation(
            suppress=suppress, in_target=self.in_target, in_burst=self._burst_active
        )

    def flush(self, t: float) -> None:
        """Account for a pending burst at end-of-stream."""
        self._finish_burst_if_quiet(t)
