"""End-to-end attack pipeline: the public high-level API.

Ties together the full chain of the paper's Fig 4:

* **Offline**: :func:`train_model` / :func:`train_store` run the bot on
  attacker-controlled device configurations and preload the model store.
* **Online**: :class:`EavesdropAttack` builds a runtime session — a live
  counter sampler feeding an :class:`AttackStage` (device recognition +
  the Algorithm 1 engine) — and drives it on a
  :class:`~repro.runtime.session.SessionRuntime`.  The same session spec
  plugs into the monitoring service's mode switch and into
  :func:`run_sessions`, which multiplexes many victims on one runtime.

Typical use::

    store = train_store([(config, app)])
    attack = EavesdropAttack(store)
    trace = simulate_credential_entry(config, app, "hunter2secret", seed=1)
    result = attack.run_on_trace(trace)
    assert result.text == "hunter2secret"
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import faults as faults_mod
from repro.android.apps import AppSpec
from repro.android.device import SessionTrace, VictimDevice
from repro.android.os_config import DeviceConfig
from repro.core.device_recognition import DeviceRecognizer, RecognitionResult
from repro.core.model_store import ModelStore
from repro.core.offline import OfflineTrainer
from repro.core.online import InferredKey, OnlineEngine, OnlineResult
from repro.core.results import warn_deprecated
from repro.core.classifier import ClassificationModel
from repro.kgsl.device_file import DeviceClock, KgslDeviceFile, ProcessContext, open_kgsl
from repro.lifecycle.calibration import (
    CalibrationPolicy,
    CalibrationService,
    resolve_calibration,
)
from repro.lifecycle.drift import DriftPlan, resolve_drift_plan
from repro.kgsl.sampler import (
    DEFAULT_INTERVAL_S,
    IDLE,
    PerfCounterSampler,
    SystemLoad,
)
from repro.obs import MetricsRegistry, RunManifest, resolve_registry
from repro.runtime import (
    RuntimeTrace,
    SamplerDeltaSource,
    Session,
    SessionRuntime,
)
from repro.workloads.background import render_slowdown, with_background_load
from repro.workloads.behavior import typing_events
from repro.workloads.typing_model import TypingModel

#: Reads pulled per scheduling step by the attack-phase source; batches
#: flow through the vectorized nonzero-delta extractor.
ATTACK_SOURCE_CHUNK = 64


def train_model(
    config: DeviceConfig,
    app: AppSpec,
    seed: int = 7,
    interval_s: float = DEFAULT_INTERVAL_S,
    sweep_repeats: int = 4,
):
    """Offline-train the classification model for one (config, app) pair."""
    trainer = OfflineTrainer(
        config, app, rng=np.random.default_rng(seed), interval_s=interval_s
    )
    return trainer.train(sweep_repeats=sweep_repeats)


def train_store(
    pairs: Iterable[Tuple[DeviceConfig, AppSpec]],
    seed: int = 7,
    interval_s: float = DEFAULT_INTERVAL_S,
    sweep_repeats: int = 4,
) -> ModelStore:
    """Offline phase over several configurations: the preloaded store."""
    store = ModelStore()
    for i, (config, app) in enumerate(pairs):
        store.add(
            train_model(
                config,
                app,
                seed=seed + i,
                interval_s=interval_s,
                sweep_repeats=sweep_repeats,
            )
        )
    return store


def simulate_credential_entry(
    config: DeviceConfig,
    app: AppSpec,
    text: str,
    seed: int = 1,
    speed_tier: Optional[str] = None,
    tail_s: float = 1.2,
    gpu_utilization: float = 0.0,
) -> SessionTrace:
    """Compile a victim session where ``text`` is typed into ``app``."""
    rng = np.random.default_rng(seed)
    typing = TypingModel(rng)
    events = typing_events(text, typing, start_s=0.6, speed_tier=speed_tier)
    slowdown = render_slowdown(gpu_utilization) if gpu_utilization else 1.0
    device = VictimDevice(config, app, rng=rng, render_slowdown=slowdown)
    end = (events[-1].t if events else 0.6) + tail_s
    trace = device.compile(events, end_time_s=end)
    if gpu_utilization:
        trace.timeline = with_background_load(
            trace.timeline, config.gpu, config.display, gpu_utilization, end, rng=rng
        )
    return trace


@dataclass
class AttackResult:
    """Everything the attacking application would send home, plus
    diagnostics for the evaluation harness.

    Satisfies the :class:`~repro.core.results.SessionResult` protocol
    (``keys`` / ``text`` / ``stats`` / ``trace``).  ``faults`` carries
    the exact injected-fault tally when a fault plan was active, and
    ``degraded`` says whether the resilience layer had to intervene.
    """

    online: OnlineResult
    model_key: str
    recognition: Optional[RecognitionResult]
    reads_issued: int
    reads_dropped: int
    faults: Optional[faults_mod.FaultStats] = None
    degraded: bool = False
    trace: Optional[RuntimeTrace] = None
    manifest: Optional[RunManifest] = None

    @property
    def keys(self) -> List[InferredKey]:
        return self.online.keys

    @property
    def text(self) -> str:
        return self.online.text

    @property
    def stats(self):
        return self.online.stats

    @property
    def latency(self):
        """The per-inference classifier-latency histogram (Fig 25)."""
        return self.online.latency

    @property
    def inference_times_s(self) -> List[float]:
        """Deprecated raw latency list; use :attr:`latency` (one-release shim)."""
        warn_deprecated("AttackResult.inference_times_s", "AttackResult.latency")
        return list(self.online.latency.samples or ())

    @property
    def samples_taken(self) -> int:
        """Deprecated alias of :attr:`reads_issued` (one-release shim)."""
        warn_deprecated("AttackResult.samples_taken", "AttackResult.reads_issued")
        return self.reads_issued


class AttackStage:
    """Device recognition + the Algorithm 1 engine as one runtime stage.

    The stage consumes the session's nonzero-delta stream.  While the
    model is unresolved it buffers deltas; once enough have arrived for
    :class:`DeviceRecognizer` (or immediately, when recognition is
    disabled or a model key is forced), it instantiates the engine,
    replays the buffer through :meth:`OnlineEngine.feed`, and streams
    from there on.  ``on_end`` closes the engine and publishes the
    :class:`AttackResult` as the session's result.
    """

    name = "attack"

    def __init__(
        self,
        attack: "EavesdropAttack",
        kgsl: KgslDeviceFile,
        sampler: PerfCounterSampler,
        model_key: Optional[str] = None,
    ) -> None:
        self.attack = attack
        self.kgsl = kgsl
        self.sampler = sampler
        self.metrics = attack.metrics
        self.forced_model_key = model_key
        self.model_key: Optional[str] = None
        self.recognition: Optional[RecognitionResult] = None
        self.engine: Optional[OnlineEngine] = None
        self._pending: List = []
        self._recognize_after = (
            DeviceRecognizer(attack.store).max_deltas
            if model_key is None
            and attack.recognize_device
            and len(attack.store) > 1
            else 0
        )

    # ------------------------------------------------------------------

    def _resolve(self, session) -> None:
        """Pick the classification model and spin up the engine."""
        attack = self.attack
        if self.forced_model_key is not None:
            self.model_key = self.forced_model_key
        elif self._recognize_after:
            # narrow the candidates with the unprivileged chip-id query
            from repro.kgsl.ioctl import (
                IOCTL_KGSL_DEVICE_GETPROPERTY,
                KGSL_PROP_DEVICE_INFO,
                KgslDeviceGetProperty,
            )

            prop = KgslDeviceGetProperty(type=KGSL_PROP_DEVICE_INFO)
            self.kgsl.ioctl(IOCTL_KGSL_DEVICE_GETPROPERTY, prop)
            recognizer = DeviceRecognizer(attack.store)
            self.recognition = recognizer.recognize(
                self._pending, adreno_model=prop.value.adreno_model
            )
            self.model_key = self.recognition.model_key
            session.trace.emit(
                session.last_t,
                session.id,
                self.name,
                "device_recognized",
                model_key=self.model_key,
                score=self.recognition.score,
            )
        else:
            self.model_key = attack.store.keys()[0]
        model = attack.current_model(self.model_key)
        self.engine = OnlineEngine(
            model,
            interval_s=attack.interval_s,
            detect_switches=attack.detect_switches,
            track_corrections=attack.track_corrections,
            recover_collisions=attack.recover_collisions,
            trace=session.trace,
            session=session.id,
            metrics=self.metrics,
            collect_evidence=attack.calibration is not None,
        )
        self.engine.begin()
        for buffered in self._pending:
            self.engine.feed(buffered)
        self._pending = []

    # ------------------------------------------------------------------

    def _drain_faults(self, session, t: float) -> None:
        """Publish the sampler's resilience events into the shared trace.

        Covers injected-fault recovery *and* access-policy denials — both
        land in the sampler's fault log.  With neither active the log is
        always empty and this returns after one attribute check.
        """
        injector = self.sampler.fault_injector
        if injector is None and not self.sampler.fault_log:
            return
        count_events = self.metrics.enabled
        for kind, detail in self.sampler.drain_fault_log():
            session.trace.emit(t, session.id, self.name, kind, **detail)
            session.mark_degraded(t, kind)
            if count_events:
                self.metrics.counter(f"faults.events.{kind}").inc()

    def on_event(self, session, t: float, delta):
        self._drain_faults(session, t)
        if self.sampler.fault_injector is not None and getattr(delta, "degraded", False):
            session.mark_degraded(t, "masked_delta" if delta.missing else "gap")
        if self.engine is None:
            self._pending.append(delta)
            if len(self._pending) >= max(1, self._recognize_after):
                self._resolve(session)
        else:
            self.engine.feed(delta)
        return None

    def on_end(self, session, t: float):
        self._drain_faults(session, t)
        if self.engine is None and (self._pending or not self._recognize_after):
            self._resolve(session)
        if self.engine is None:
            if self.sampler.counters_denied:
                # an access policy blinded the sampler: there is nothing
                # to recognize from, so fall back to the first model and
                # report an empty inference instead of crashing the run
                self._recognize_after = 0
                self._resolve(session)
            else:
                # recognition was required but the stream stayed empty
                raise ValueError("no nonzero PC changes to recognize from")
        online = self.engine.finish()
        service = self.attack.calibration
        if service is not None and self.model_key is not None:
            evidence = self.engine.drain_evidence()
            service.observe(self.model_key, online.stats, evidence=evidence)
            if service.should_recalibrate(self.model_key):
                refit = service.recalibrate(
                    self.model_key, self.attack.current_model(self.model_key)
                )
                if refit is not None:
                    self.attack._live_models[self.model_key] = refit
                    session.trace.emit(
                        t,
                        session.id,
                        self.name,
                        "model_recalibrated",
                        model_key=self.model_key,
                        generation=refit.metadata["recalibration"]["generation"],
                    )
        injector = self.sampler.fault_injector
        self.sampler.flush_metrics(self.metrics)
        policy = self.kgsl.access_policy
        if policy is not None and hasattr(policy, "flush_metrics"):
            policy.flush_metrics(self.metrics)
        if self.metrics.enabled and injector is not None:
            for name, value in injector.stats.as_dict().items():
                if value > 0:
                    self.metrics.counter(f"faults.injected.{name}").inc(value)
        drift = self.kgsl.drift_injector
        if self.metrics.enabled and drift is not None:
            for name, value in drift.stats.as_dict().items():
                if name == "min_thermal_factor":
                    # a level, not a count: keep the most severe factor
                    # any session in the run reached
                    gauge = self.metrics.gauge("drift.min_thermal_factor")
                    if gauge.value == 0.0 or value < gauge.value:
                        gauge.set(value)
                elif value > 0:
                    self.metrics.counter(f"drift.{name}").inc(int(value))
        session.result = AttackResult(
            online=online,
            model_key=self.model_key,
            recognition=self.recognition,
            reads_issued=self.sampler.reads_issued,
            reads_dropped=self.sampler.reads_dropped,
            faults=injector.stats if injector is not None else None,
            degraded=session.degraded
            or (injector is not None and injector.stats.total > 0),
            trace=session.trace,
        )
        return None


class EavesdropAttack:
    """The online attacking application."""

    def __init__(
        self,
        store: ModelStore,
        interval_s: float = DEFAULT_INTERVAL_S,
        recognize_device: bool = True,
        detect_switches: bool = True,
        track_corrections: bool = True,
        recover_collisions: bool = True,
        fault_plan: Union[faults_mod.FaultPlan, None, str] = "auto",
        metrics: Optional[MetricsRegistry] = None,
        mitigation=None,
        drift: Union[DriftPlan, None, str] = "auto",
        calibration: Union[CalibrationPolicy, None, str] = None,
    ) -> None:
        if len(store) == 0:
            raise ValueError("model store is empty — run the offline phase first")
        self.store = store
        self.interval_s = interval_s
        self.recognize_device = recognize_device
        self.detect_switches = detect_switches
        self.track_corrections = track_corrections
        self.recover_collisions = recover_collisions
        self.fault_plan = faults_mod.resolve_plan(fault_plan)
        #: Optional signature drift applied at the KGSL boundary; like
        #: faults, resolved once here so every session shares the plan.
        self.drift_plan = resolve_drift_plan(drift)
        self.metrics = resolve_registry(metrics)
        #: Optional :class:`~repro.mitigations.MitigationPolicy` the
        #: victim's device enforces; each session gets a fresh enforcer.
        self.mitigation = mitigation
        policy = resolve_calibration(calibration)
        #: Optional per-device recalibration; one service spans every
        #: session this attack runs, so suspect evidence accumulates
        #: across sessions and a re-fit carries to the next one.
        self.calibration: Optional[CalibrationService] = (
            CalibrationService(policy, metrics=self.metrics)
            if policy is not None
            else None
        )
        #: Latest model generation per model key — re-fits land here;
        #: the offline store itself is never mutated.
        self._live_models: Dict[str, ClassificationModel] = {}

    def current_model(self, model_key: str) -> ClassificationModel:
        """The newest generation for ``model_key`` — the offline model
        until the calibration service produces a re-fit for it."""
        live = self._live_models.get(model_key)
        return live if live is not None else self.store.get(model_key)

    def session_spec(
        self,
        trace: SessionTrace,
        load: SystemLoad = IDLE,
        seed: int = 99,
        model_key: Optional[str] = None,
        access_policy=None,
        chunk: int = ATTACK_SOURCE_CHUNK,
    ) -> Tuple[SamplerDeltaSource, List[AttackStage]]:
        """Build the (source, stages) pair for one attack-mode session.

        Opens a fresh KGSL fd on the victim timeline, wires up the 8 ms
        sampler, and returns the runtime pieces; both
        :meth:`run_on_trace` and the monitoring service's escalation
        plug these into a :class:`SessionRuntime`.
        """
        rng = np.random.default_rng(seed)
        injector = (
            self.fault_plan.injector(seed_offset=seed)
            if self.fault_plan is not None
            else None
        )
        if access_policy is None and self.mitigation is not None:
            access_policy = self.mitigation.enforcer(seed=seed)
        drift_injector = (
            self.drift_plan.injector(seed_offset=seed)
            if self.drift_plan is not None
            else None
        )
        kgsl = open_kgsl(
            trace.timeline,
            clock=DeviceClock(),
            context=ProcessContext(),
            access_policy=access_policy,
            adreno_model=trace.config.gpu.model,
            fault_injector=injector,
            drift_injector=drift_injector,
        )
        sampler = PerfCounterSampler(
            kgsl, interval_s=self.interval_s, rng=rng, fault_injector=injector
        )
        source = SamplerDeltaSource(
            sampler, 0.0, trace.end_time_s, load=load, chunk=chunk,
            metrics=self.metrics,
        )
        stage = AttackStage(self, kgsl, sampler, model_key=model_key)
        return source, [stage]

    def run_on_trace(
        self,
        trace: SessionTrace,
        load: SystemLoad = IDLE,
        seed: int = 99,
        model_key: Optional[str] = None,
        access_policy=None,
        runtime_trace: Optional[RuntimeTrace] = None,
    ) -> AttackResult:
        """Sample the victim timeline and infer the typed credential.

        Args:
            trace: compiled victim session.
            load: concurrent CPU/GPU utilization (Section 7.3).
            seed: RNG seed for the sampler's scheduling jitter.
            model_key: skip recognition and force a specific model.
            access_policy: optional mitigation enforced at the device file.
            runtime_trace: optional shared event log to record decisions in.
        """
        runtime = SessionRuntime(trace=runtime_trace, metrics=self.metrics)
        source, stages = self.session_spec(
            trace, load=load, seed=seed, model_key=model_key, access_policy=access_policy
        )
        session = runtime.add_session(Session("attack", source, stages))
        runtime.run()
        result = session.result
        if self.metrics.enabled:
            result.manifest = self.metrics.manifest(sessions=1)
        return result


class SessionBatch(List[AttackResult]):
    """The results of one batched run — a plain list of
    :class:`AttackResult`, plus the batch-level :attr:`manifest`
    (``None`` unless the attack carried an enabled metrics registry)."""

    manifest: Optional[RunManifest] = None


def run_sessions(
    attack: EavesdropAttack,
    traces: Sequence[SessionTrace],
    load: SystemLoad = IDLE,
    seed: int = 99,
    runtime_trace: Optional[RuntimeTrace] = None,
) -> SessionBatch:
    """Batched online phase: N victim sessions on one session runtime.

    Every trace becomes its own runtime session (own KGSL fd, own
    scheduling RNG seeded ``seed + i``), all multiplexed on a single
    virtual timeline in one process.  Results are byte-identical to
    running each trace alone with the same seed — the scheduler
    interleaves but never perturbs sessions.
    """
    runtime = SessionRuntime(trace=runtime_trace, metrics=attack.metrics)
    sessions = []
    for i, trace in enumerate(traces):
        source, stages = attack.session_spec(trace, load=load, seed=seed + i)
        sessions.append(
            runtime.add_session(Session(f"attack-{i}", source, stages))
        )
    runtime.run()
    batch = SessionBatch(s.result for s in sessions)
    if attack.metrics.enabled:
        batch.manifest = attack.metrics.manifest(sessions=len(sessions))
    return batch
