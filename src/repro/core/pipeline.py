"""End-to-end attack pipeline: the public high-level API.

Ties together the full chain of the paper's Fig 4:

* **Offline**: :func:`train_model` / :func:`train_store` run the bot on
  attacker-controlled device configurations and preload the model store.
* **Online**: :class:`EavesdropAttack` samples the victim's KGSL device
  file, recognizes the device configuration, and runs Algorithm 1 to
  infer the credential.

Typical use::

    store = train_store([(config, app)])
    attack = EavesdropAttack(store)
    trace = simulate_credential_entry(config, app, "hunter2secret", seed=1)
    result = attack.run_on_trace(trace)
    assert result.text == "hunter2secret"
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.android.apps import AppSpec
from repro.android.device import SessionTrace, VictimDevice
from repro.android.os_config import DeviceConfig
from repro.core.device_recognition import DeviceRecognizer, RecognitionResult
from repro.core.model_store import ModelStore
from repro.core.offline import OfflineTrainer
from repro.core.online import OnlineEngine, OnlineResult
from repro.kgsl.device_file import DeviceClock, ProcessContext, open_kgsl
from repro.kgsl.sampler import (
    DEFAULT_INTERVAL_S,
    IDLE,
    PerfCounterSampler,
    SystemLoad,
    nonzero_deltas,
)
from repro.workloads.background import render_slowdown, with_background_load
from repro.workloads.behavior import typing_events
from repro.workloads.typing_model import TypingModel


def train_model(
    config: DeviceConfig,
    app: AppSpec,
    seed: int = 7,
    interval_s: float = DEFAULT_INTERVAL_S,
    sweep_repeats: int = 4,
):
    """Offline-train the classification model for one (config, app) pair."""
    trainer = OfflineTrainer(
        config, app, rng=np.random.default_rng(seed), interval_s=interval_s
    )
    return trainer.train(sweep_repeats=sweep_repeats)


def train_store(
    pairs: Iterable[Tuple[DeviceConfig, AppSpec]],
    seed: int = 7,
    interval_s: float = DEFAULT_INTERVAL_S,
    sweep_repeats: int = 4,
) -> ModelStore:
    """Offline phase over several configurations: the preloaded store."""
    store = ModelStore()
    for i, (config, app) in enumerate(pairs):
        store.add(
            train_model(
                config,
                app,
                seed=seed + i,
                interval_s=interval_s,
                sweep_repeats=sweep_repeats,
            )
        )
    return store


def simulate_credential_entry(
    config: DeviceConfig,
    app: AppSpec,
    text: str,
    seed: int = 1,
    speed_tier: Optional[str] = None,
    tail_s: float = 1.2,
    gpu_utilization: float = 0.0,
) -> SessionTrace:
    """Compile a victim session where ``text`` is typed into ``app``."""
    rng = np.random.default_rng(seed)
    typing = TypingModel(rng)
    events = typing_events(text, typing, start_s=0.6, speed_tier=speed_tier)
    slowdown = render_slowdown(gpu_utilization) if gpu_utilization else 1.0
    device = VictimDevice(config, app, rng=rng, render_slowdown=slowdown)
    end = (events[-1].t if events else 0.6) + tail_s
    trace = device.compile(events, end_time_s=end)
    if gpu_utilization:
        trace.timeline = with_background_load(
            trace.timeline, config.gpu, config.display, gpu_utilization, end, rng=rng
        )
    return trace


@dataclass
class AttackResult:
    """Everything the attacking application would send home, plus
    diagnostics for the evaluation harness."""

    online: OnlineResult
    model_key: str
    recognition: Optional[RecognitionResult]
    samples_taken: int
    reads_dropped: int

    @property
    def text(self) -> str:
        return self.online.text

    @property
    def inference_times_s(self) -> List[float]:
        return self.online.inference_times_s


class EavesdropAttack:
    """The online attacking application."""

    def __init__(
        self,
        store: ModelStore,
        interval_s: float = DEFAULT_INTERVAL_S,
        recognize_device: bool = True,
        detect_switches: bool = True,
        track_corrections: bool = True,
        recover_collisions: bool = True,
    ) -> None:
        if len(store) == 0:
            raise ValueError("model store is empty — run the offline phase first")
        self.store = store
        self.interval_s = interval_s
        self.recognize_device = recognize_device
        self.detect_switches = detect_switches
        self.track_corrections = track_corrections
        self.recover_collisions = recover_collisions

    def run_on_trace(
        self,
        trace: SessionTrace,
        load: SystemLoad = IDLE,
        seed: int = 99,
        model_key: Optional[str] = None,
        access_policy=None,
    ) -> AttackResult:
        """Sample the victim timeline and infer the typed credential.

        Args:
            trace: compiled victim session.
            load: concurrent CPU/GPU utilization (Section 7.3).
            seed: RNG seed for the sampler's scheduling jitter.
            model_key: skip recognition and force a specific model.
            access_policy: optional mitigation enforced at the device file.
        """
        rng = np.random.default_rng(seed)
        clock = DeviceClock()
        kgsl = open_kgsl(
            trace.timeline,
            clock=clock,
            context=ProcessContext(),
            access_policy=access_policy,
            adreno_model=trace.config.gpu.model,
        )
        sampler = PerfCounterSampler(kgsl, interval_s=self.interval_s, rng=rng)
        samples = sampler.sample_range(0.0, trace.end_time_s, load=load)
        stream = nonzero_deltas(samples)

        recognition: Optional[RecognitionResult] = None
        if model_key is None:
            if self.recognize_device and len(self.store) > 1:
                # narrow the candidates with the unprivileged chip-id query
                from repro.kgsl.ioctl import (
                    IOCTL_KGSL_DEVICE_GETPROPERTY,
                    KGSL_PROP_DEVICE_INFO,
                    KgslDeviceGetProperty,
                )

                prop = KgslDeviceGetProperty(type=KGSL_PROP_DEVICE_INFO)
                kgsl.ioctl(IOCTL_KGSL_DEVICE_GETPROPERTY, prop)
                recognizer = DeviceRecognizer(self.store)
                recognition = recognizer.recognize(
                    stream, adreno_model=prop.value.adreno_model
                )
                model_key = recognition.model_key
            else:
                model_key = self.store.keys()[0]
        model = self.store.get(model_key)

        engine = OnlineEngine(
            model,
            interval_s=self.interval_s,
            detect_switches=self.detect_switches,
            track_corrections=self.track_corrections,
            recover_collisions=self.recover_collisions,
        )
        online = engine.process(stream)
        return AttackResult(
            online=online,
            model_key=model_key,
            recognition=recognition,
            samples_taken=len(samples),
            reads_dropped=sampler.reads_dropped,
        )
