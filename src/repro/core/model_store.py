"""Preloaded model store (paper Section 3.2 / Section 7.6).

The attack APK ships one classification model per (device model,
configuration, target app).  The paper reports an average model size of
~3.59 KB and a worst-case app size of ~13.4 MB for 3,000 preloaded models.
The store serializes to a single JSON document so those numbers can be
reproduced directly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Union

from repro.core.classifier import ClassificationModel


class ModelStore:
    """A keyed collection of classification models."""

    def __init__(self) -> None:
        self._models: Dict[str, ClassificationModel] = {}

    def add(self, model: ClassificationModel) -> None:
        if not model.model_key:
            raise ValueError("model must have a model_key to be stored")
        self._models[model.model_key] = model

    def get(self, model_key: str) -> ClassificationModel:
        try:
            return self._models[model_key]
        except KeyError:
            raise KeyError(
                f"no model for {model_key!r}; available: {sorted(self._models)}"
            ) from None

    def __contains__(self, model_key: str) -> bool:
        return model_key in self._models

    def __len__(self) -> int:
        return len(self._models)

    def __iter__(self) -> Iterator[ClassificationModel]:
        return iter(self._models.values())

    def keys(self) -> List[str]:
        return sorted(self._models)

    # ------------------------------------------------------------------

    def total_size_bytes(self) -> int:
        return sum(model.size_bytes() for model in self._models.values())

    def average_size_bytes(self) -> float:
        if not self._models:
            return 0.0
        return self.total_size_bytes() / len(self._models)

    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {"models": [model.to_dict() for model in self._models.values()]}

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ModelStore":
        store = cls()
        for entry in data.get("models", []):  # type: ignore[union-attr]
            store.add(ClassificationModel.from_dict(entry))
        return store

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ModelStore":
        return cls.from_dict(json.loads(Path(path).read_text()))
