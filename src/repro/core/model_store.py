"""Preloaded model store (paper Section 3.2 / Section 7.6) — versioned.

The attack APK ships one classification model per (device model,
configuration, target app).  The paper reports an average model size of
~3.59 KB and a worst-case app size of ~13.4 MB for 3,000 preloaded models.
The store serializes to a single JSON document so those numbers can be
reproduced directly.

Since the online signature lifecycle landed, stores are integrity
checked and versioned:

* :meth:`ModelStore.save` writes a checksummed envelope
  (``repro.model_store/2``): a SHA-256 over the canonical dump of the
  envelope covers the payload, version, and lineage, so any single-byte
  corruption or truncation of the file raises
  :class:`ModelIntegrityError` at load rather than silently
  misclassifying (hypothesis-tested).
* Legacy pre-version files (a bare ``{"models": [...]}`` document) still
  load, with a :class:`DeprecationWarning`.
* :class:`VersionedModelStore` is the on-disk lineage the calibration
  service writes into: a directory of monotonically versioned,
  checksummed store files plus a manifest recording each version's
  checksum and lineage metadata (what was recalibrated, from what, why).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import warnings
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.core.classifier import ClassificationModel

#: Schema tag of the checksummed single-file envelope.
STORE_SCHEMA = "repro.model_store/2"

#: Schema tag of the versioned-directory manifest.
STORE_DIR_SCHEMA = "repro.model_store.dir/1"

_VERSION_FILE_RE = re.compile(r"^v(\d{5})\.json$")


class ModelIntegrityError(ValueError):
    """A stored model failed its integrity check at load time.

    Raised for checksum mismatches, truncated or unparseable files, and
    version/manifest disagreements.  Never classify with a model that
    raised this — a silently corrupted centroid misclassifies without
    any other symptom.
    """


def _canonical_bytes(document: Dict[str, object]) -> bytes:
    """The byte form the checksum covers: sorted keys, no whitespace.

    Compactness matters — with no redundant bytes in the canonical form,
    every byte of the written file is load-bearing, so a single-byte
    change either breaks the JSON parse or changes a checksummed value.
    """
    return json.dumps(document, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _checksum(document: Dict[str, object]) -> str:
    return hashlib.sha256(_canonical_bytes(document)).hexdigest()


class ModelStore:
    """A keyed collection of classification models."""

    def __init__(self) -> None:
        self._models: Dict[str, ClassificationModel] = {}
        #: Version this store was loaded as / will be saved as (0 = an
        #: in-memory store that has never touched a versioned lineage).
        self.version: int = 0
        #: Free-form provenance carried through save/load (e.g. the
        #: calibration service's refit record).
        self.lineage: Dict[str, object] = {}

    def add(self, model: ClassificationModel) -> None:
        if not model.model_key:
            raise ValueError("model must have a model_key to be stored")
        self._models[model.model_key] = model

    def get(self, model_key: str) -> ClassificationModel:
        try:
            return self._models[model_key]
        except KeyError:
            raise KeyError(
                f"no model for {model_key!r}; available: {sorted(self._models)}"
            ) from None

    def __contains__(self, model_key: str) -> bool:
        return model_key in self._models

    def __len__(self) -> int:
        return len(self._models)

    def __iter__(self) -> Iterator[ClassificationModel]:
        return iter(self._models.values())

    def keys(self) -> List[str]:
        return sorted(self._models)

    # ------------------------------------------------------------------

    def total_size_bytes(self) -> int:
        return sum(model.size_bytes() for model in self._models.values())

    def average_size_bytes(self) -> float:
        if not self._models:
            return 0.0
        return self.total_size_bytes() / len(self._models)

    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {"models": [model.to_dict() for model in self._models.values()]}

    def envelope(self) -> Dict[str, object]:
        """The checksummed document :meth:`save` writes."""
        document: Dict[str, object] = {
            "schema": STORE_SCHEMA,
            "version": self.version,
            "lineage": self.lineage,
            "payload": self.to_dict(),
        }
        document["checksum"] = _checksum(document)
        return document

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_bytes(_canonical_bytes(self.envelope()))

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ModelStore":
        store = cls()
        for entry in data.get("models", []):  # type: ignore[union-attr]
            store.add(ClassificationModel.from_dict(entry))
        return store

    @classmethod
    def from_envelope(cls, document: object) -> "ModelStore":
        """Verify and unpack a ``repro.model_store/2`` envelope."""
        if not isinstance(document, dict):
            raise ModelIntegrityError(
                f"model store document is {type(document).__name__}, not an object"
            )
        schema = document.get("schema")
        if schema is None and "models" in document:
            warnings.warn(
                "loading a legacy (pre-version) model store file; re-save "
                "it to upgrade to the checksummed envelope format",
                DeprecationWarning,
                stacklevel=3,
            )
            return cls.from_dict(document)
        if schema != STORE_SCHEMA:
            raise ModelIntegrityError(
                f"unknown model store schema {schema!r} (expected {STORE_SCHEMA!r})"
            )
        recorded = document.get("checksum")
        body = {key: value for key, value in document.items() if key != "checksum"}
        actual = _checksum(body)
        if recorded != actual:
            raise ModelIntegrityError(
                f"model store checksum mismatch: recorded {recorded!r}, "
                f"computed {actual!r} — the file was corrupted or tampered with"
            )
        payload = document.get("payload")
        if not isinstance(payload, dict):
            raise ModelIntegrityError("model store envelope has no payload object")
        store = cls.from_dict(payload)
        store.version = int(document.get("version", 0))
        lineage = document.get("lineage")
        store.lineage = dict(lineage) if isinstance(lineage, dict) else {}
        return store

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ModelStore":
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ModelIntegrityError(f"cannot read model store {path}: {exc}") from exc
        except UnicodeDecodeError as exc:
            raise ModelIntegrityError(
                f"model store {path} is not valid UTF-8 — corrupted: {exc}"
            ) from exc
        try:
            document = json.loads(text)
        except ValueError as exc:
            raise ModelIntegrityError(
                f"model store {path} is truncated or not valid JSON: {exc}"
            ) from exc
        try:
            return cls.from_envelope(document)
        except ModelIntegrityError as exc:
            raise ModelIntegrityError(f"{path}: {exc}") from None


class VersionedModelStore:
    """A directory of monotonically versioned, checksummed model stores.

    Layout::

        <root>/
          manifest.json      # {"schema": ..., "latest": N, "versions": [...]}
          v00001.json        # ModelStore envelope, version 1
          v00002.json        # version 2 (e.g. a recalibration of v1)

    The version files are the source of truth — each is a complete
    checksummed :class:`ModelStore` envelope.  The manifest adds the
    lineage index *and* an independent copy of each version's checksum,
    so swapping a validly-checksummed file in from elsewhere (tamper,
    not corruption) is detected too.

    Writers allocate versions with ``O_CREAT | O_EXCL``: two processes
    saving concurrently can never clobber each other — the loser's
    create fails and it retries with the next version number.
    """

    MANIFEST_NAME = "manifest.json"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------

    def _version_path(self, version: int) -> Path:
        return self.root / f"v{version:05d}.json"

    def versions(self) -> List[int]:
        """All versions present on disk, ascending."""
        found = []
        for entry in self.root.iterdir():
            match = _VERSION_FILE_RE.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def latest_version(self) -> Optional[int]:
        versions = self.versions()
        return versions[-1] if versions else None

    def __len__(self) -> int:
        return len(self.versions())

    # ------------------------------------------------------------------

    def save(
        self, store: ModelStore, lineage: Optional[Dict[str, object]] = None
    ) -> int:
        """Write ``store`` as the next version; returns the version number.

        The store object's ``version``/``lineage`` are updated in place
        to what was written, so a subsequent ``store.save(path)`` of the
        same object reproduces the versioned bytes.
        """
        version = (self.latest_version() or 0) + 1
        while True:
            path = self._version_path(version)
            try:
                fd = os.open(str(path), os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
                break
            except FileExistsError:
                # a concurrent writer took this version: try the next one
                version += 1
        store.version = version
        store.lineage = dict(lineage) if lineage is not None else dict(store.lineage)
        envelope = store.envelope()
        with os.fdopen(fd, "wb") as handle:
            handle.write(_canonical_bytes(envelope))
        self._index_version(envelope)
        return version

    def _index_version(self, envelope: Dict[str, object]) -> None:
        """Append one version's record to the manifest, atomically."""
        manifest = self._read_manifest()
        records = [
            record
            for record in manifest.get("versions", [])
            if record.get("version") != envelope["version"]
        ]
        records.append(
            {
                "version": envelope["version"],
                "file": self._version_path(int(envelope["version"])).name,  # type: ignore[arg-type]
                "checksum": envelope["checksum"],
                "lineage": envelope["lineage"],
                "models": len(envelope["payload"]["models"]),  # type: ignore[index]
            }
        )
        records.sort(key=lambda record: record["version"])
        manifest = {
            "schema": STORE_DIR_SCHEMA,
            "latest": records[-1]["version"],
            "versions": records,
        }
        tmp = self.root / (self.MANIFEST_NAME + ".tmp")
        tmp.write_bytes(_canonical_bytes(manifest))
        os.replace(str(tmp), str(self.root / self.MANIFEST_NAME))

    def _read_manifest(self) -> Dict[str, object]:
        path = self.root / self.MANIFEST_NAME
        if not path.exists():
            return {"schema": STORE_DIR_SCHEMA, "versions": []}
        try:
            document = json.loads(path.read_text())
        except ValueError as exc:
            raise ModelIntegrityError(
                f"store manifest {path} is truncated or not valid JSON: {exc}"
            ) from exc
        if not isinstance(document, dict) or document.get("schema") != STORE_DIR_SCHEMA:
            raise ModelIntegrityError(
                f"store manifest {path} has unknown schema "
                f"{document.get('schema') if isinstance(document, dict) else document!r}"
            )
        return document

    def manifest(self) -> Dict[str, object]:
        """The lineage index (schema, latest version, per-version records)."""
        return self._read_manifest()

    def lineage_of(self, version: int) -> Dict[str, object]:
        for record in self._read_manifest().get("versions", []):  # type: ignore[union-attr]
            if record.get("version") == version:
                return dict(record.get("lineage") or {})
        raise KeyError(f"no manifest record for version {version}")

    # ------------------------------------------------------------------

    def load(self, version: Optional[int] = None) -> ModelStore:
        """Load one version (default: latest), fully integrity-checked."""
        if version is None:
            version = self.latest_version()
            if version is None:
                raise ModelIntegrityError(f"no versions in model store {self.root}")
        path = self._version_path(version)
        if not path.exists():
            raise ModelIntegrityError(
                f"no version {version} in model store {self.root}; "
                f"available: {self.versions()}"
            )
        store = ModelStore.load(path)
        if store.version != version:
            raise ModelIntegrityError(
                f"{path.name} claims version {store.version}, expected {version} "
                "— the file was renamed or tampered with"
            )
        recorded = None
        for record in self._read_manifest().get("versions", []):  # type: ignore[union-attr]
            if record.get("version") == version:
                recorded = record.get("checksum")
        if recorded is not None and recorded != store.envelope()["checksum"]:
            raise ModelIntegrityError(
                f"{path.name} does not match the manifest checksum for "
                f"version {version} — the file was swapped or tampered with"
            )
        return store

    def load_latest(self) -> ModelStore:
        return self.load(None)
