"""Duplication filtering (paper Section 5.1, first countermeasure).

"The interval between two key presses of a human user is at least
hundreds of milliseconds ... much longer than our interval of GPU PC
readings.  For every change of the GPU PC value, we backtrace a time
period Δt1 in the past, and only consider this change as indicating a key
press if no key press has been recently inferred within Δt1."  The paper
chooses Δt1 = 75 ms, the shortest plausible inter-key interval.
"""

from __future__ import annotations

from typing import Optional

#: Δt1: the paper's backtrace window, from keystroke-dynamics literature.
DEDUP_WINDOW_S = 0.075


class DuplicationFilter:
    """Tracks the last accepted key press and vetoes near-duplicates."""

    def __init__(self, window_s: float = DEDUP_WINDOW_S) -> None:
        if window_s <= 0:
            raise ValueError("dedup window must be positive")
        self.window_s = window_s
        self._last_key_t: Optional[float] = None
        self.suppressed = 0

    def admit(self, t: float) -> bool:
        """True if a key press inferred at ``t`` should be accepted."""
        if self._last_key_t is not None and t - self._last_key_t < self.window_s:
            self.suppressed += 1
            return False
        self._last_key_t = t
        return True

    @property
    def last_key_time(self) -> Optional[float]:
        return self._last_key_t

    def reset(self) -> None:
        self._last_key_t = None
