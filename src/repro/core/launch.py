"""Target-application launch detection (paper Section 3.2, Fig 4).

"The attacking application will spawn a monitoring process, which runs as
an Android service in background and uses the existing techniques
[14, 15, 49, 50] to detect the launch of target applications ... If a
target application is launched, the monitoring process will start reading
the selected GPU PCs."

The cited techniques watch cheap procfs/cache signals; in the simulation
the equivalent cheap observable is a *slow* counter poll (a few Hz costs
nothing) that recognizes the launch transition: a burst of full-screen
renders followed by the target app's idle login-screen signature (its
cursor-blink cluster).  Only then does the expensive 8 ms sampling start —
which is also what keeps the attack's power draw negligible while the
victim is elsewhere (Fig 26).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.classifier import ClassificationModel
from repro.kgsl.sampler import PcDelta

#: Cheap pre-detection polling cadence (vs the attack's 8 ms).
IDLE_POLL_INTERVAL_S = 0.25


@dataclass(frozen=True)
class LaunchEvent:
    """A detected target-app launch."""

    t: float
    score: float


class LaunchDetector:
    """Recognizes the target app's launch from slow counter polls.

    Detection requires, within a short window:

    1. a *launch burst* — cumulative counter growth far beyond idle
       (the app's cold-start render storm); followed by
    2. a delta that classifies into the target's field family (the login
       screen's cursor blink) — the app-specific confirmation.
    """

    def __init__(
        self,
        model: ClassificationModel,
        burst_threshold: Optional[float] = None,
        confirm_window_s: float = 3.0,
    ) -> None:
        self.model = model
        if burst_threshold is None:
            key_totals = [
                float(model.centroid(label).sum()) for label in model.key_labels
            ]
            burst_threshold = 8.0 * max(key_totals) if key_totals else 1e7
        self.burst_threshold = burst_threshold
        self.confirm_window_s = confirm_window_s
        self._burst_t: Optional[float] = None
        self.launches: List[LaunchEvent] = []

    def observe(self, delta: PcDelta) -> Optional[LaunchEvent]:
        """Feed one slow-poll delta; returns a launch when confirmed."""
        if not delta:
            return None
        if delta.total >= self.burst_threshold:
            self._burst_t = delta.t
            return None
        if (
            self._burst_t is not None
            and delta.t - self._burst_t <= self.confirm_window_s
        ):
            classification = self.model.classify(delta)
            if classification.is_field:
                event = LaunchEvent(t=delta.t, score=float(delta.total))
                self.launches.append(event)
                self._burst_t = None
                return event
        elif self._burst_t is not None and delta.t - self._burst_t > self.confirm_window_s:
            self._burst_t = None
        return None

    def scan(self, deltas: Sequence[PcDelta]) -> List[LaunchEvent]:
        """Run over a whole slow-poll stream."""
        events = []
        for delta in deltas:
            event = self.observe(delta)
            if event is not None:
                events.append(event)
        return events


class LaunchWatchStage:
    """The idle-watch mode of the monitoring service as a runtime stage.

    Feeds every slow-poll delta to a :class:`LaunchDetector`; when the
    launch is confirmed, invokes ``on_launch(session, event)`` — which
    typically calls :meth:`~repro.runtime.session.Session.switch_mode`
    to escalate the session into the 8 ms attack mode.  The stage
    consumes its input (nothing flows past the idle watch).
    """

    name = "launch-watch"

    def __init__(
        self,
        detector: LaunchDetector,
        on_launch: Callable[[object, LaunchEvent], None],
    ) -> None:
        self.detector = detector
        self.on_launch = on_launch
        self.launch: Optional[LaunchEvent] = None

    def on_event(self, session, t: float, delta: PcDelta):
        if self.launch is not None:
            return None
        event = self.detector.observe(delta)
        if event is not None:
            self.launch = event
            session.trace.emit(
                t, session.id, self.name, "launch_detected", score=event.score
            )
            self.on_launch(session, event)
        return None

    def on_end(self, session, t: float):
        return None
