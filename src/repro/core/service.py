"""The background monitoring service: the full Fig 4 online pipeline.

The attack application "will spawn a monitoring process, which runs as an
Android service in background" (Section 3.2).  The service is one
runtime session with two modes:

* **idle watch** — a cheap slow poll (4 Hz) of the counters, enough for
  :class:`~repro.core.launch.LaunchDetector` to spot the target app's
  launch, and practically free in power (Fig 26's negligible overhead
  while the victim is elsewhere);
* **attack** — once the launch is confirmed, the
  :class:`~repro.core.launch.LaunchWatchStage` switches the session onto
  the full 8 ms sampling source and the
  :class:`~repro.core.pipeline.AttackStage` (device recognition plus the
  Algorithm 1 engine), for as long as the login screen is expected to be
  in use.

Both modes are scheduled by the shared
:class:`~repro.runtime.session.SessionRuntime` — the service owns no
sampling loop of its own, and because the runtime pulls reads lazily,
escalation really does stop the idle poll on the confirming read.

Only the inference results leave the device ("Only the results of
eavesdropping are sent back to the attacker"), which the
:class:`ServiceReport` reflects: it carries the inferred text and
timestamps, never raw counter traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from typing import Union

from repro import faults as faults_mod
from repro.android.device import SessionTrace
from repro.core.launch import (
    IDLE_POLL_INTERVAL_S,
    LaunchDetector,
    LaunchEvent,
    LaunchWatchStage,
)
from repro.core.model_store import ModelStore
from repro.core.online import EngineStats, InferredKey
from repro.core.pipeline import AttackResult, EavesdropAttack
from repro.kgsl.device_file import DeviceClock, ProcessContext, open_kgsl
from repro.lifecycle.calibration import CalibrationPolicy
from repro.lifecycle.drift import DriftPlan, resolve_drift_plan
from repro.kgsl.sampler import (
    DEFAULT_INTERVAL_S,
    IDLE,
    PerfCounterSampler,
    SystemLoad,
)
from repro.obs import MetricsRegistry, RunManifest, resolve_registry
from repro.runtime import RuntimeTrace, SamplerDeltaSource, Session, SessionRuntime


@dataclass
class ServiceReport:
    """What the service sends back — results only, never raw traces.

    Satisfies the :class:`~repro.core.results.SessionResult` protocol
    (``keys`` / ``text`` / ``stats`` / ``trace``).  ``inferred_text`` is
    the pre-protocol name of :attr:`text`; it remains a real field for
    one release, but new code should read ``text``.
    """

    launch_detected_at: Optional[float]
    inferred_text: str
    key_times: List[float] = field(default_factory=list)
    deletions_detected: int = 0
    model_key: str = ""
    idle_reads: int = 0
    attack_reads: int = 0
    keys: List[InferredKey] = field(default_factory=list)
    stats: EngineStats = field(default_factory=EngineStats)
    trace: Optional[RuntimeTrace] = None
    faults: Optional[faults_mod.FaultStats] = None
    degraded: bool = False
    manifest: Optional[RunManifest] = None

    @property
    def text(self) -> str:
        """The inferred credential (canonical protocol accessor)."""
        return self.inferred_text

    @property
    def reads_saved_vs_always_on(self) -> float:
        """Fraction of reads the idle watch avoided compared to sampling
        at the attack cadence from boot."""
        total_if_always_on = self.attack_reads + self.idle_reads * (
            IDLE_POLL_INTERVAL_S / DEFAULT_INTERVAL_S
        )
        taken = self.attack_reads + self.idle_reads
        if total_if_always_on <= 0:
            return 0.0
        return 1.0 - taken / total_if_always_on


class MonitoringService:
    """Composes launch detection and the eavesdropping attack."""

    def __init__(
        self,
        store: ModelStore,
        idle_interval_s: float = IDLE_POLL_INTERVAL_S,
        attack_interval_s: float = DEFAULT_INTERVAL_S,
        attack_window_s: float = 60.0,
        fault_plan: Union[faults_mod.FaultPlan, None, str] = "auto",
        metrics: Optional[MetricsRegistry] = None,
        mitigation=None,
        drift: Union[DriftPlan, None, str] = "auto",
        calibration: Union[CalibrationPolicy, None, str] = None,
    ) -> None:
        if len(store) == 0:
            raise ValueError("model store is empty")
        self.store = store
        self.idle_interval_s = idle_interval_s
        self.attack_interval_s = attack_interval_s
        self.attack_window_s = attack_window_s
        self.fault_plan = faults_mod.resolve_plan(fault_plan)
        self.metrics = resolve_registry(metrics)
        self.mitigation = mitigation
        #: Drift affects the idle watch and the attack window alike —
        #: it is a property of the victim device, not of a mode.
        self.drift_plan = resolve_drift_plan(drift)
        self.calibration = calibration

    def run(
        self,
        trace: SessionTrace,
        load: SystemLoad = IDLE,
        seed: int = 1234,
        watch_model_key: Optional[str] = None,
        runtime_trace: Optional[RuntimeTrace] = None,
    ) -> ServiceReport:
        """Run the service over a victim session from boot to end.

        Args:
            trace: the compiled victim session (launch happens at t=0's
                initial render in :meth:`VictimDevice.compile`).
            load: concurrent system load during the session.
            seed: scheduling randomness.
            watch_model_key: model used by the launch detector (defaults
                to the first stored model; any target's model works since
                detection keys on the generic launch-burst + field shape).
            runtime_trace: optional shared event log to record the idle
                polls, the mode switch and every engine decision in.
        """
        rng = np.random.default_rng(seed)

        # --- idle watch: slow polls until the launch is confirmed -------
        idle_injector = (
            self.fault_plan.injector(seed_offset=seed)
            if self.fault_plan is not None
            else None
        )
        kgsl = open_kgsl(
            trace.timeline,
            clock=DeviceClock(),
            context=ProcessContext(),
            access_policy=(
                self.mitigation.enforcer(seed=seed)
                if self.mitigation is not None
                else None
            ),
            adreno_model=trace.config.gpu.model,
            fault_injector=idle_injector,
            drift_injector=(
                self.drift_plan.injector(seed_offset=seed)
                if self.drift_plan is not None
                else None
            ),
        )
        watcher = PerfCounterSampler(
            kgsl, interval_s=self.idle_interval_s, rng=rng, fault_injector=idle_injector
        )
        watch_key = watch_model_key or self.store.keys()[0]
        detector = LaunchDetector(self.store.get(watch_key))

        attack = EavesdropAttack(
            self.store,
            interval_s=self.attack_interval_s,
            recognize_device=len(self.store) > 1,
            fault_plan=self.fault_plan,
            metrics=self.metrics,
            mitigation=self.mitigation,
            drift=self.drift_plan,
            calibration=self.calibration,
        )
        launch_info = {"event": None, "idle_reads": 0}

        def escalate(session: Session, event: LaunchEvent) -> None:
            """Idle watch → attack mode: swap the session's source and
            stages; the rest of the slow poll is abandoned unread."""
            launch_info["event"] = event
            launch_info["idle_reads"] = watcher.reads_issued
            window = _window(trace, event.t, self.attack_window_s)
            # a fresh fd and clock: the attack samples the remaining window
            source, stages = attack.session_spec(window, load=load, seed=seed + 1)
            session.switch_mode(source, stages)

        # the idle watch streams read-by-read (chunk=1) so the mode
        # switch lands exactly on the confirming poll
        source = SamplerDeltaSource(
            watcher, 0.0, trace.end_time_s, load=load, chunk=1,
            metrics=self.metrics,
        )
        stage = LaunchWatchStage(detector, on_launch=escalate)

        runtime = SessionRuntime(trace=runtime_trace, metrics=self.metrics)
        session = runtime.add_session(Session("service", source, [stage]))
        runtime.run()

        # the idle watcher's tallies join the run-wide sampler rollup
        # (the attack sampler's are flushed by its stage at session end)
        watcher.flush_metrics(self.metrics)
        if self.metrics.enabled and idle_injector is not None:
            for name, value in idle_injector.stats.as_dict().items():
                if value > 0:
                    self.metrics.counter(f"faults.injected.{name}").inc(value)

        launch: Optional[LaunchEvent] = launch_info["event"]
        if launch is None:
            report = ServiceReport(
                launch_detected_at=None,
                inferred_text="",
                idle_reads=watcher.reads_issued,
                trace=runtime.trace,
                faults=idle_injector.stats if idle_injector is not None else None,
                degraded=session.degraded,
            )
            self._flush_report(report)
            return report
        attack_result: AttackResult = session.result
        faults = attack_result.faults
        if idle_injector is not None and faults is not None:
            # the report covers the whole service run: both fds' tallies
            faults = faults_mod.FaultStats(
                **{
                    name: value + idle_injector.stats.as_dict()[name]
                    for name, value in faults.as_dict().items()
                }
            )
        elif idle_injector is not None:
            faults = idle_injector.stats
        report = ServiceReport(
            launch_detected_at=launch.t,
            inferred_text=attack_result.text,
            key_times=attack_result.online.key_times(),
            deletions_detected=attack_result.online.stats.deletions_detected,
            model_key=attack_result.model_key,
            idle_reads=launch_info["idle_reads"],
            attack_reads=attack_result.reads_issued,
            keys=attack_result.keys,
            stats=attack_result.stats,
            trace=runtime.trace,
            faults=faults,
            degraded=session.degraded or attack_result.degraded,
        )
        self._flush_report(report)
        return report

    def _flush_report(self, report: ServiceReport) -> None:
        """Service-level rollup: what one full watch-and-attack pass
        produced, plus the run manifest attached to the report."""
        if not self.metrics.enabled:
            return
        metrics = self.metrics
        metrics.counter("service.runs").inc()
        metrics.counter("service.idle_reads").inc(report.idle_reads)
        metrics.counter("service.attack_reads").inc(report.attack_reads)
        metrics.counter("service.keys_inferred").inc(len(report.keys))
        metrics.counter("service.deletions_detected").inc(report.deletions_detected)
        if report.launch_detected_at is not None:
            metrics.counter("service.launches_detected").inc()
            metrics.gauge("service.launch_detected_at_s").set(report.launch_detected_at)
        if report.degraded:
            metrics.counter("service.degraded_runs").inc()
        metrics.gauge("service.reads_saved_vs_always_on").set(
            report.reads_saved_vs_always_on
        )
        report.manifest = metrics.manifest(command="monitor")


def _window(trace: SessionTrace, start_s: float, duration_s: float) -> SessionTrace:
    """A view of the session limited to the attack window.

    The timeline is shared (counters are cumulative hardware state); only
    the sampling end changes.
    """
    end = min(trace.end_time_s, start_s + duration_s)
    return SessionTrace(
        timeline=trace.timeline,
        config=trace.config,
        app=trace.app,
        presses=trace.presses,
        backspaces=trace.backspaces,
        switch_intervals=trace.switch_intervals,
        end_time_s=end,
    )
