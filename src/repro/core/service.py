"""The background monitoring service: the full Fig 4 online pipeline.

The attack application "will spawn a monitoring process, which runs as an
Android service in background" (Section 3.2).  The service has two modes:

* **idle watch** — a cheap slow poll (4 Hz) of the counters, enough for
  :class:`~repro.core.launch.LaunchDetector` to spot the target app's
  launch, and practically free in power (Fig 26's negligible overhead
  while the victim is elsewhere);
* **attack** — once the launch is confirmed, the full 8 ms sampling loop
  plus device recognition and the Algorithm 1 engine, for as long as the
  login screen is expected to be in use.

Only the inference results leave the device ("Only the results of
eavesdropping are sent back to the attacker"), which the
:class:`ServiceReport` reflects: it carries the inferred text and
timestamps, never raw counter traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.android.device import SessionTrace
from repro.core.launch import IDLE_POLL_INTERVAL_S, LaunchDetector, LaunchEvent
from repro.core.model_store import ModelStore
from repro.core.pipeline import EavesdropAttack
from repro.kgsl.device_file import DeviceClock, ProcessContext, open_kgsl
from repro.kgsl.sampler import (
    DEFAULT_INTERVAL_S,
    IDLE,
    PerfCounterSampler,
    SystemLoad,
    nonzero_deltas,
)


@dataclass
class ServiceReport:
    """What the service sends back — results only, never raw traces."""

    launch_detected_at: Optional[float]
    inferred_text: str
    key_times: List[float] = field(default_factory=list)
    deletions_detected: int = 0
    model_key: str = ""
    idle_reads: int = 0
    attack_reads: int = 0

    @property
    def reads_saved_vs_always_on(self) -> float:
        """Fraction of reads the idle watch avoided compared to sampling
        at the attack cadence from boot."""
        total_if_always_on = self.attack_reads + self.idle_reads * (
            IDLE_POLL_INTERVAL_S / DEFAULT_INTERVAL_S
        )
        taken = self.attack_reads + self.idle_reads
        if total_if_always_on <= 0:
            return 0.0
        return 1.0 - taken / total_if_always_on


class MonitoringService:
    """Composes launch detection and the eavesdropping attack."""

    def __init__(
        self,
        store: ModelStore,
        idle_interval_s: float = IDLE_POLL_INTERVAL_S,
        attack_interval_s: float = DEFAULT_INTERVAL_S,
        attack_window_s: float = 60.0,
    ) -> None:
        if len(store) == 0:
            raise ValueError("model store is empty")
        self.store = store
        self.idle_interval_s = idle_interval_s
        self.attack_interval_s = attack_interval_s
        self.attack_window_s = attack_window_s

    def run(
        self,
        trace: SessionTrace,
        load: SystemLoad = IDLE,
        seed: int = 1234,
        watch_model_key: Optional[str] = None,
    ) -> ServiceReport:
        """Run the service over a victim session from boot to end.

        Args:
            trace: the compiled victim session (launch happens at t=0's
                initial render in :meth:`VictimDevice.compile`).
            load: concurrent system load during the session.
            seed: scheduling randomness.
            watch_model_key: model used by the launch detector (defaults
                to the first stored model; any target's model works since
                detection keys on the generic launch-burst + field shape).
        """
        rng = np.random.default_rng(seed)

        # --- idle watch: slow polls until the launch is confirmed -------
        clock = DeviceClock()
        kgsl = open_kgsl(
            trace.timeline,
            clock=clock,
            context=ProcessContext(),
            adreno_model=trace.config.gpu.model,
        )
        watcher = PerfCounterSampler(
            kgsl, interval_s=self.idle_interval_s, rng=rng
        )
        watch_key = watch_model_key or self.store.keys()[0]
        detector = LaunchDetector(self.store.get(watch_key))

        launch: Optional[LaunchEvent] = None
        samples = watcher.sample_range(0.0, trace.end_time_s, load=load)
        for delta in nonzero_deltas(samples):
            launch = detector.observe(delta)
            if launch is not None:
                break
        if launch is None:
            return ServiceReport(
                launch_detected_at=None,
                inferred_text="",
                idle_reads=len(samples),
            )
        # watch reads actually spent before escalating
        idle_reads = sum(1 for sample in samples if sample.t <= launch.t)

        # --- attack: fast sampling from the detection point --------------
        attack = EavesdropAttack(
            self.store,
            interval_s=self.attack_interval_s,
            recognize_device=len(self.store) > 1,
        )
        # a fresh fd and clock: the attack samples the remaining window
        attack_result = attack.run_on_trace(
            _window(trace, launch.t, self.attack_window_s), load=load, seed=seed + 1
        )
        return ServiceReport(
            launch_detected_at=launch.t,
            inferred_text=attack_result.text,
            key_times=attack_result.online.key_times(),
            deletions_detected=attack_result.online.stats.deletions_detected,
            model_key=attack_result.model_key,
            idle_reads=idle_reads,
            attack_reads=attack_result.samples_taken,
        )


def _window(trace: SessionTrace, start_s: float, duration_s: float) -> SessionTrace:
    """A view of the session limited to the attack window.

    The timeline is shared (counters are cumulative hardware state); only
    the sampling end changes.
    """
    end = min(trace.end_time_s, start_s + duration_s)
    return SessionTrace(
        timeline=trace.timeline,
        config=trace.config,
        app=trace.app,
        presses=trace.presses,
        backspaces=trace.backspaces,
        switch_intervals=trace.switch_intervals,
        end_time_s=end,
    )
