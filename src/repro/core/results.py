"""The shared result protocol for the public API surface.

Every run-level result object the facade returns — the batch attack's
``AttackResult``, the streaming engine's ``OnlineResult``, the monitoring
service's ``ServiceReport`` — satisfies :class:`SessionResult`: the same
four accessors mean the same thing everywhere, so evaluation code can be
written once against the protocol.

* ``keys``  — the inferred key presses (list of ``InferredKey``);
* ``text``  — the inferred credential with detected deletions applied;
* ``stats`` — the engine's :class:`~repro.core.online.EngineStats`;
* ``trace`` — the shared :class:`~repro.runtime.trace.RuntimeTrace`
  event log of the run (``None`` when no trace was recorded).

Field names that predate the protocol (``samples_taken``,
``inferred_text``) remain available for one release as deprecated
aliases; :func:`warn_deprecated` is the single choke point that emits
their :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Protocol, runtime_checkable

from repro.core.online import EngineStats, InferredKey
from repro.runtime.trace import RuntimeTrace


@runtime_checkable
class SessionResult(Protocol):
    """What every run-level result of the public API can do."""

    @property
    def keys(self) -> List[InferredKey]: ...

    @property
    def text(self) -> str: ...

    @property
    def stats(self) -> EngineStats: ...

    @property
    def trace(self) -> Optional[RuntimeTrace]: ...


def warn_deprecated(old: str, new: str) -> None:
    """Emit the one-release deprecation warning for a renamed accessor."""
    warnings.warn(
        f"{old} is deprecated and will be removed in the next release; "
        f"use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )
