"""The Online Phase inference engine (paper Algorithm 1 + Sections 5.1-5.3).

The engine consumes the stream of nonzero PC deltas produced by the
sampler and maintains the inferred key-press set E with timestamps M:

1. **Duplication** — a key press inferred within Δt1 = 75 ms of the
   previous one is a popup-animation duplicate and is suppressed.
2. **Split** — a delta that classifies as nothing is merged with the
   previous unconsumed delta; if the combination classifies as a key
   press, it was a split read and the press is inferred at the earlier
   timestamp (the greedy step the paper notes can occasionally be wrong).
3. **System noise** — anything that still classifies as nothing.
4. **App switches** — burst detection suppresses inference while the
   user is away from the target app (Section 5.2).
5. **Corrections** — text-field redraws carry the input length; length
   drops delete the most recent inferred characters (Section 5.3).

On top of Algorithm 1, the engine applies two recovery heuristics for
collision cases the greedy algorithm loses (both grounded in what the
offline phase already knows):

* **pending-dismiss subtraction** — after a key press is inferred, its
  popup must dismiss within a few hundred ms; if an unexplained change
  arrives while that dismissal is pending (fast typing can land the
  dismissal and the *next* press in the same read), subtracting the known
  dismiss signature often reveals the press underneath;
* **duplication halving** — a popup-animation duplicate landing in the
  same read as its press doubles the delta; an unexplained change that
  classifies as a key press at half magnitude is such a merge.

Every classifier call is timed with a monotonic clock; the recorded
latencies reproduce the paper's Fig 25 (>95 % of inferences under 0.1 ms).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.appswitch import AppSwitchDetector
from repro.core.classifier import Classification, ClassificationModel
from repro.core.corrections import CorrectionTracker
from repro.core import features
from repro.core.dedup import DEDUP_WINDOW_S, DuplicationFilter
from repro.kgsl.sampler import PcDelta
from repro.obs import Histogram, MetricsRegistry, new_latency_histogram, resolve_registry
from repro.runtime.trace import RuntimeTrace

#: Maximum gap between two reads for split recombination: a render split
#: across reads lands in *consecutive* reads, so a little over one
#: nominal interval is enough.
SPLIT_MERGE_FACTOR = 2.6


@dataclass
class InferredKey:
    """One inferred key press (an element of E with its M timestamp).

    ``low_confidence`` marks keys classified from a masked feature
    vector (counters missing at the KGSL boundary): reported rather than
    dropped, but flagged so the consumer can weigh them accordingly.
    """

    t: float
    char: str
    distance: float
    deleted: bool = False
    from_split: bool = False
    low_confidence: bool = False


@dataclass
class EngineStats:
    """Bookkeeping the evaluation section reports on."""

    deltas_seen: int = 0
    keys_inferred: int = 0
    duplicates_suppressed: int = 0
    splits_recovered: int = 0
    noise_events: int = 0
    field_events: int = 0
    deletions_detected: int = 0
    suppressed_by_switch: int = 0
    unattributed_growth: int = 0
    gaps_seen: int = 0
    masked_deltas: int = 0
    low_confidence_keys: int = 0


@dataclass
class OnlineResult:
    """Full output of one eavesdropping run.

    ``latency`` is the per-inference classifier-latency histogram (Fig
    25); it retains its raw samples, so the deprecated
    ``inference_times_s`` list accessor keeps returning exact values for
    one release.
    """

    keys: List[InferredKey] = field(default_factory=list)
    stats: EngineStats = field(default_factory=EngineStats)
    latency: Histogram = field(default_factory=new_latency_histogram)
    trace: Optional[RuntimeTrace] = None

    @property
    def inference_times_s(self) -> List[float]:
        """Deprecated raw latency list; use ``latency`` (histogram)."""
        from repro.core.results import warn_deprecated

        warn_deprecated(
            "OnlineResult.inference_times_s", "OnlineResult.latency.samples"
        )
        return list(self.latency.samples or ())

    @property
    def text(self) -> str:
        """The inferred credential, with detected deletions applied."""
        return "".join(k.char for k in self.keys if not k.deleted)

    @property
    def all_inferred(self) -> str:
        return "".join(k.char for k in self.keys)

    def key_times(self) -> List[float]:
        return [k.t for k in self.keys if not k.deleted]


class OnlineEngine:
    """Algorithm 1 with the Section 5.2/5.3 extensions."""

    def __init__(
        self,
        model: ClassificationModel,
        interval_s: float = 0.008,
        dedup_window_s: float = DEDUP_WINDOW_S,
        detect_switches: bool = True,
        track_corrections: bool = True,
        recover_collisions: bool = True,
        trace: Optional[RuntimeTrace] = None,
        session: str = "",
        stage_name: str = "engine",
        metrics: Optional[MetricsRegistry] = None,
        collect_evidence: bool = False,
    ) -> None:
        self.model = model
        self.interval_s = interval_s
        self.dedup = DuplicationFilter(window_s=dedup_window_s)
        self.track_corrections = track_corrections
        self.corrections = CorrectionTracker()
        self.recover_collisions = recover_collisions
        self.trace = trace
        self.session = session
        self.stage_name = stage_name
        self.metrics = resolve_registry(metrics)
        # resolved once: with the null registry this is the shared no-op
        # instrument, so the hot path pays one attribute load per observe
        self._latency_hist = self.metrics.histogram("engine.inference_latency_s")
        self._noise_ring: List = []
        #: Opt-in calibration-evidence capture: unexplained full-vector
        #: deltas (the shape drifted key presses take) are retained for
        #: the lifecycle's drift-ratio estimator.  Off by default — the
        #: fast path and golden traces are untouched.
        self.collect_evidence = collect_evidence
        self.evidence: List[np.ndarray] = []
        #: Hot swaps performed on this engine (kept off
        #: :class:`EngineStats` so existing result schemas don't shift).
        self.model_swaps = 0
        self._active_model = model
        self._deflation_u = None
        self._result: Optional[OnlineResult] = None
        self._prev: Optional[PcDelta] = None
        self._prev_consumed = True
        self._last_fed_t: Optional[float] = None
        self.switch_detector: Optional[AppSwitchDetector] = None
        if detect_switches:
            self.switch_detector = AppSwitchDetector(
                big_threshold=self._switch_threshold(model)
            )

    def _emit(self, t: float, kind: str, **detail) -> None:
        """Record one engine decision in the shared runtime event log."""
        if self.trace is not None:
            self.trace.emit(t, self.session, self.stage_name, kind, **detail)

    def _observe_latency(self, result: OnlineResult, elapsed_s: float) -> None:
        """One classifier-call latency, into the result's own histogram
        and the run-wide registry aggregate."""
        result.latency.observe(elapsed_s)
        self._latency_hist.observe(elapsed_s)

    @staticmethod
    def _switch_threshold(model: ClassificationModel) -> float:
        """Raw-magnitude threshold separating full-screen transitions from
        typing-scale changes: above every key centroid's total."""
        key_totals = [
            float(model.centroid(label).sum()) for label in model.key_labels
        ]
        if not key_totals:
            return 1e7
        return 2.5 * max(key_totals)

    # ------------------------------------------------------------------

    def process(self, deltas: Sequence[PcDelta]) -> OnlineResult:
        """Run the engine over a complete delta stream.

        The batch path is a thin wrapper: it delegates every delta to the
        incremental :meth:`feed` and closes the stream with
        :meth:`finish`, so streaming and batch execution are the same
        code path by construction.
        """
        self.begin()
        for delta in deltas:
            self.feed(delta)
        return self.finish()

    def feed_many(self, deltas: Sequence[PcDelta]) -> OnlineResult:
        """Consume a batch of deltas through the vectorized classifier.

        Semantically this *is* the ``for delta: feed(delta)`` loop — every
        Algorithm-1 decision still runs per delta, in order — but the
        primary nearest-centroid lookup for the whole batch is computed
        up front with :meth:`ClassificationModel.classify_batch` (one
        GEMM for n deltas) and injected into each step.  A step uses its
        precomputed answer only while the model it was scored against is
        still active: ambient deflation can swap ``_active_model``
        mid-stream, at which point the remaining tail is re-batched
        against the new view.  Secondary lookups (duplication halving,
        composite subtraction, collision recovery) stay per-delta — they
        are rare and depend on state only the sequential pass knows.
        """
        if self._result is None:
            self.begin()
        pending = list(deltas)
        while pending:
            model = self._active_model
            live = [j for j, delta in enumerate(pending) if delta]
            pre: Dict[int, Classification] = {}
            per_delta_s = 0.0
            if live:
                t0 = time.perf_counter()
                matrix = np.vstack([features.vectorize(pending[j]) for j in live])
                masks = np.vstack(
                    [features.present_mask(pending[j].missing) for j in live]
                )
                pre = dict(zip(live, model.classify_batch(matrix, masks)))
                per_delta_s = (time.perf_counter() - t0) / len(live)
            consumed = 0
            for j, delta in enumerate(pending):
                self.feed(delta, _precomputed=(model, pre.get(j), per_delta_s))
                consumed += 1
                if self._active_model is not model:
                    break
            pending = pending[consumed:]
        return self._result

    def begin(self) -> OnlineResult:
        """Open a new stream; returns the (live) result accumulator."""
        self._result = OnlineResult(trace=self.trace)
        self._prev = None
        self._prev_consumed = True
        self._last_fed_t = None
        return self._result

    def swap_model(self, model: ClassificationModel) -> None:
        """Hot-swap the classification model mid-session.

        Stream state — the dedup window, correction tracker, unconsumed
        previous delta, app-switch burst state — carries over untouched;
        only the classifier view changes.  An active ambient-deflation
        direction is re-applied to the new model, and the app-switch
        burst threshold is re-derived from the new centroids.  A
        :meth:`feed_many` batch in flight notices the swap through its
        existing re-batching seam (``_active_model`` identity check) and
        re-scores its remaining tail against the new model, so no delta
        is ever classified twice or skipped.
        """
        self.model = model
        self._active_model = (
            model
            if self._deflation_u is None
            else model.with_deflation(self._deflation_u)
        )
        if self.switch_detector is not None:
            self.switch_detector.big_threshold = self._switch_threshold(model)
        self.model_swaps += 1
        if self.metrics.enabled:
            self.metrics.counter("engine.model_swaps").inc()
        self._emit(
            self._last_fed_t if self._last_fed_t is not None else 0.0,
            "model_swap",
            model_key=model.model_key,
        )

    def drain_evidence(self) -> List[np.ndarray]:
        """Return and clear the collected calibration-evidence vectors."""
        evidence, self.evidence = self.evidence, []
        return evidence

    def _classify(self, delta: PcDelta):
        """Classify a delta, masking missing feature dimensions if any."""
        if delta.missing:
            return self._active_model.classify_vector_masked(
                features.vectorize(delta), features.present_mask(delta.missing)
            )
        return self._active_model.classify(delta)

    def feed(
        self,
        delta: PcDelta,
        _precomputed: Optional[Tuple[ClassificationModel, Optional[Classification], float]] = None,
    ) -> OnlineResult:
        """Consume one PC delta incrementally (Algorithm 1, one step).

        This is the streaming entry point the session runtime drives;
        state between calls (the unconsumed previous delta, the dedup
        window, the correction tracker) lives on the engine.

        ``_precomputed`` is :meth:`feed_many`'s private channel: a
        ``(model, classification, elapsed_s)`` triple from a batched
        ``classify_batch`` pass.  It is honored only while ``model`` is
        still the active model — ambient deflation can swap the view
        between batching and this step, in which case the delta is
        re-classified fresh and the caller re-batches its tail.
        """
        if self._result is None:
            self.begin()
        result = self._result
        self._last_fed_t = delta.t
        if delta.gap:
            # dropped/deferred reads between the endpoints: events in the
            # hole were merged or lost — record it even if the delta is
            # otherwise unremarkable
            result.stats.gaps_seen += 1
            self._emit(delta.t, "gap", span_s=delta.t - delta.prev_t)
        if not delta:
            return result
        result.stats.deltas_seen += 1
        masked = bool(delta.missing)
        if masked:
            result.stats.masked_deltas += 1
            self._emit(delta.t, "masked_delta", missing=len(delta.missing))

        # Ambient-workload correction (Fig 22b): a background app adds
        # an increment of unknown magnitude but stable *direction* to
        # every counter read.  Once that direction is estimated (from
        # the recurring unexplained deltas), the engine switches to a
        # deflated model view that projects it out of observations and
        # centroids alike, cleaning the whole pipeline at once.
        if self.recover_collisions:
            self._refresh_deflation(t=delta.t)

        if _precomputed is not None and _precomputed[0] is self._active_model:
            classification = _precomputed[1]
            self._observe_latency(result, _precomputed[2])
        else:
            t0 = time.perf_counter()
            classification = self._classify(delta)
            self._observe_latency(result, time.perf_counter() - t0)

        prev, prev_consumed = self._prev, self._prev_consumed

        if self.switch_detector is not None:
            observation = self.switch_detector.observe(
                delta, classification, magnitude=self._effective_magnitude(delta)
            )
            if observation.suppress:
                result.stats.suppressed_by_switch += 1
                self._emit(delta.t, "switch_suppressed")
                if classification.label is None:
                    # suppressed-but-unexplained changes still inform
                    # the ambient-workload estimate (a login animation
                    # can otherwise starve it into permanent suppression)
                    self._note_noise(delta)
                self._prev, self._prev_consumed = delta, True
                return result

        # Split recombination (Algorithm 1 lines 7-10): when the
        # previous change went unexplained, consider that this change
        # is the tail of a render split across two reads.  Take the
        # merged interpretation whenever it explains the data strictly
        # better than the change alone.
        merged_cls = None
        event_t = delta.t
        if (
            prev is not None
            and not prev_consumed
            and 0.0 <= delta.t - prev.t <= self.interval_s * SPLIT_MERGE_FACTOR
            and prev.prev_t <= delta.prev_t
        ):
            merged = delta.merge(prev)
            t0 = time.perf_counter()
            merged_cls = self._classify(merged)
            self._observe_latency(result, time.perf_counter() - t0)
        if merged_cls is not None and merged_cls.label is not None and (
            classification.label is None
            or merged_cls.distance < classification.distance
        ):
            classification = merged_cls
            event_t = prev.t
            result.stats.splits_recovered += 1
            self._emit(delta.t, "split_merge", merged_from=prev.t)

        if classification.label is None and self.recover_collisions and not masked:
            # collision heuristics (halving, composite subtraction) need
            # the full feature vector — a masked delta would fabricate
            # evidence in the unobserved dimensions
            recovered = self._recover_collision(result, delta)
            if recovered is not None:
                classification = recovered
                self._emit(delta.t, "collision_recovered")
            elif (
                merged_cls is not None
                and merged_cls.label is None
                and not (prev is not None and prev.missing)
            ):
                # a composite event (press + dismiss/field) itself split
                # across two reads: recombine, then decompose
                t0 = time.perf_counter()
                merged_composite = self._active_model.classify_composite(
                    features.vectorize(delta.merge(prev)),
                    field_lengths=self._plausible_lengths(),
                )
                self._observe_latency(result, time.perf_counter() - t0)
                if merged_composite.is_key:
                    classification = merged_composite
                    event_t = prev.t
                    result.stats.splits_recovered += 1
                    self._emit(delta.t, "split_merge", merged_from=prev.t)

        if classification.is_key:
            self._infer_key(
                result, event_t, classification, from_split=event_t != delta.t
            )
            self._prev, self._prev_consumed = delta, True
            return result

        if classification.is_field:
            self._field_event(result, event_t, classification.field_length)
            # field redraws stay available for split recombination: a
            # partially-read blink can masquerade as a shorter field,
            # and its tail may arrive merged with a key press
            self._prev, self._prev_consumed = delta, False
            return result

        # Reject classes and unexplained noise both leave the delta
        # available for split recombination with the *next* change: the
        # first half of a split key press often masquerades as a
        # dismiss-like reject before its tail arrives.
        result.stats.noise_events += 1
        self._emit(delta.t, "noise", label=classification.label)
        if classification.label is None:
            self._note_noise(delta)
        self._prev, self._prev_consumed = delta, False
        return result

    def finish(self) -> OnlineResult:
        """Close the stream: flush pending burst state, detach the result."""
        if self._result is None:
            self.begin()
        if self.switch_detector is not None and self._last_fed_t is not None:
            self.switch_detector.flush(self._last_fed_t + 1.0)
        result = self._result
        if self.metrics.enabled:
            # end-of-stream flush: per-session decision tallies roll up
            # into the run-wide registry, away from the per-delta path
            for stat_field in fields(EngineStats):
                value = getattr(result.stats, stat_field.name)
                if value > 0:
                    self.metrics.counter(f"engine.{stat_field.name}").inc(value)
        self._result = None
        self._prev = None
        self._prev_consumed = True
        self._last_fed_t = None
        return result

    # ------------------------------------------------------------------

    #: Noise deltas kept for the ambient-baseline estimate.
    AMBIENT_WINDOW = 24
    #: Minimum noise observations before the ambient estimate is trusted.
    AMBIENT_MIN_SAMPLES = 6

    def _recover_collision(self, result: OnlineResult, delta: PcDelta):
        """Try the duplication-halving, dismiss/field-subtraction and
        ambient-baseline-subtraction heuristics.

        Only key interpretations are accepted — halving or subtracting a
        field redraw would fabricate length evidence.

        The ambient baseline targets concurrent GPU workloads (Fig 22b): a
        background 3D app renders a near-constant increment every frame,
        which the engine estimates from the recurring unexplained deltas
        and subtracts before classification.
        """
        t0 = time.perf_counter()
        half_cls = self._active_model.classify(delta.scaled(0.5))
        self._observe_latency(result, time.perf_counter() - t0)
        if half_cls.is_key:
            return half_cls

        vec = features.vectorize(delta)
        t0 = time.perf_counter()
        composite_cls = self._active_model.classify_composite(
            vec, field_lengths=self._plausible_lengths()
        )
        self._observe_latency(result, time.perf_counter() - t0)
        if composite_cls.is_key:
            return composite_cls

        return None

    def _effective_magnitude(self, delta: PcDelta) -> float:
        """Raw magnitude with the ambient direction's share removed, so a
        steady background or animation never masquerades as an app-switch
        burst."""
        if self._deflation_u is None:
            return float(delta.total)
        vec = features.vectorize(delta)
        scaled = vec / self.model.scale
        cleaned = (scaled - float(scaled @ self._deflation_u) * self._deflation_u) * self.model.scale
        return float(np.clip(cleaned, 0.0, None).sum())

    def _refresh_deflation(self, t: Optional[float] = None) -> None:
        """Adopt (or update) the deflated model view when a stable
        ambient direction is present."""
        direction = self._ambient_direction()
        if direction is None:
            return
        _, scaled_dir = direction
        if self._deflation_u is not None and float(scaled_dir @ self._deflation_u) > 0.999:
            return  # direction unchanged
        self._deflation_u = scaled_dir
        self._active_model = self.model.with_deflation(scaled_dir)
        self._emit(t if t is not None else 0.0, "ambient_deflation")
        if self.switch_detector is not None:
            # deflated observations make background deltas small again, so
            # the raw-magnitude burst threshold remains valid
            pass

    def _ambient_direction(self):
        """Unit direction (raw and scaled space) of the recurring
        unexplained deltas, if they point consistently enough to be a
        periodic background workload."""
        if len(self._noise_ring) < self.AMBIENT_MIN_SAMPLES:
            return None
        matrix = np.vstack(self._noise_ring)
        norms = np.linalg.norm(matrix, axis=1)
        keep = norms > 0
        if keep.sum() < self.AMBIENT_MIN_SAMPLES:
            return None
        if len(self._noise_ring) < self.AMBIENT_WINDOW:
            return None
        matrix = np.vstack(self._noise_ring)
        norms = np.linalg.norm(matrix, axis=1)
        keep = norms > 0
        if keep.sum() < self.AMBIENT_MIN_SAMPLES:
            return None
        units = matrix[keep] / norms[keep][:, None]
        # robust direction: the ring mixes pure background deltas with
        # contaminated event windows; fit the mean direction, keep the
        # inliers, refit, and demand the inlier cluster be large and tight
        mean_dir = units.mean(axis=0)
        mean_norm = float(np.linalg.norm(mean_dir))
        if mean_norm <= 0:
            return None
        mean_dir = mean_dir / mean_norm
        cosines = units @ mean_dir
        inliers = cosines > 0.9
        if inliers.sum() < max(self.AMBIENT_MIN_SAMPLES, 0.5 * len(units)):
            return None
        refined = units[inliers].mean(axis=0)
        refined_norm = float(np.linalg.norm(refined))
        if refined_norm < 0.98:
            return None
        raw_dir = refined / refined_norm
        scaled = matrix[keep][inliers] / self.model.scale[None, :]
        scaled_units = scaled / np.linalg.norm(scaled, axis=1)[:, None]
        scaled_dir = scaled_units.mean(axis=0)
        scaled_dir = scaled_dir / np.linalg.norm(scaled_dir)
        return raw_dir, scaled_dir

    #: Calibration-evidence vectors retained between drains.
    EVIDENCE_CAP = 512

    def _note_noise(self, delta: PcDelta) -> None:
        if delta.missing:
            # zeros in unobserved dimensions would bend the ambient
            # direction estimate toward the observed subspace
            return
        vec = features.vectorize(delta)
        self._noise_ring.append(vec)
        if len(self._noise_ring) > self.AMBIENT_WINDOW:
            self._noise_ring.pop(0)
        if self.collect_evidence and len(self.evidence) < self.EVIDENCE_CAP:
            # drifted key presses land here: full-vector changes the
            # frozen model can no longer explain
            self.evidence.append(vec)

    def _plausible_lengths(self):
        """Field lengths the composite search may subtract: near the
        correction tracker's current estimate, or unrestricted before any
        field event has been seen."""
        if not self.track_corrections:
            return None
        bounds = self.corrections.length_bounds()
        if bounds is None:
            return None
        lo, hi = bounds
        return tuple(range(max(0, lo - 1), hi + 3))

    def _infer_key(
        self, result: OnlineResult, t: float, classification, from_split: bool
    ) -> None:
        if not self.dedup.admit(t):
            result.stats.duplicates_suppressed += 1
            self._emit(t, "duplicate_suppressed")
            return
        char = classification.key_char
        assert char is not None
        low_confidence = getattr(classification, "confidence", 1.0) < 1.0
        result.keys.append(
            InferredKey(
                t=t,
                char=char,
                distance=classification.distance,
                from_split=from_split,
                low_confidence=low_confidence,
            )
        )
        result.stats.keys_inferred += 1
        if low_confidence:
            result.stats.low_confidence_keys += 1
            self._emit(t, "key", char=char, from_split=from_split, low_confidence=True)
        else:
            self._emit(t, "key", char=char, from_split=from_split)

    def _field_event(self, result: OnlineResult, t: float, length: Optional[int]) -> None:
        result.stats.field_events += 1
        self._emit(t, "field", length=length)
        if not self.track_corrections or length is None:
            return
        emitted = self.corrections.observe(
            t, length, keys_inferred_total=result.stats.keys_inferred
        )
        result.stats.unattributed_growth = self.corrections.unattributed_growth
        for event in emitted:
            result.stats.deletions_detected += 1
            self._emit(event.t, "correction")
            # delete the inferred key that actually preceded the backspace:
            # the most recent not-yet-deleted key inferred before the
            # decrease was first observed
            candidates = [
                k for k in result.keys if not k.deleted and k.t < event.t
            ]
            target = candidates[-1] if candidates else None
            if target is None:
                remaining = [k for k in result.keys if not k.deleted]
                target = remaining[-1] if remaining else None
            if target is not None:
                target.deleted = True
