"""The per-configuration classification model (paper Section 5.1, Fig 12).

The model holds one centroid per *class* in the 11-dimensional counter
space.  Classes come in two kinds:

* **key classes** (``key:<char>``) — the first PC value change of each key
  press, the signal used for eavesdropping;
* **reject classes** — every other recurring screen change the offline
  phase observes: text-field redraws (``field:<n>``, which carry the
  input-length signal of Section 5.3), popup dismissals, notification-bar
  redraws, app-switch frames.  Training explicit reject classes is how the
  model "distinguish[es] between GPU hardware events caused by key presses
  and other system factors".

Classification is nearest-centroid under a per-dimension normalized
Euclidean distance, thresholded by ``cth`` — the paper's classification
threshold :math:`C_{th}`, "decided accordingly to eliminate any false
positives".  Distances above ``cth`` classify as ``None`` (system noise).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core import features

KEY_PREFIX = "key:"
FIELD_PREFIX = "field:"


def scaled_sq_dists(
    rows: np.ndarray,
    centroids: np.ndarray,
    centroid_sq: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Squared Euclidean distances between every row and every centroid.

    ``rows`` is ``(n, d)`` and ``centroids`` is ``(c, d)``, both already in
    the model's scaled feature space; the result is ``(n, c)``.  Expanding
    ``||r - c||^2 = ||r||^2 - 2 r.c + ||c||^2`` turns the n*c difference
    rows into a single GEMM, which is what makes batch classification and
    the offline radius fit scale.  Cancellation can push tiny distances a
    few ulps below zero, so the result is clamped at 0.

    ``centroid_sq`` lets callers reuse a precomputed ``||c||^2`` vector.
    """
    if centroid_sq is None:
        centroid_sq = np.einsum("ij,ij->i", centroids, centroids)
    row_sq = np.einsum("ij,ij->i", rows, rows)
    sq = row_sq[:, None] - 2.0 * (rows @ centroids.T) + centroid_sq[None, :]
    return np.maximum(sq, 0.0, out=sq)

#: Composite changes carry the jitter of two independent frames, so their
#: acceptance threshold scales by ~sqrt(2) over the single-frame cth.
COMPOSITE_CTH_FACTOR = 1.6


@dataclass(frozen=True)
class Classification:
    """Result of classifying one PC value change.

    ``confidence`` is 1.0 for a full-vector classification and the
    fraction of feature dimensions actually observed when the vector was
    masked (counters reclaimed by another client) — the downstream
    engine uses it to flag low-confidence keys.
    """

    label: Optional[str]
    distance: float
    confidence: float = 1.0

    @property
    def is_key(self) -> bool:
        return self.label is not None and self.label.startswith(KEY_PREFIX)

    @property
    def is_field(self) -> bool:
        return self.label is not None and self.label.startswith(FIELD_PREFIX)

    @property
    def key_char(self) -> Optional[str]:
        if not self.is_key:
            return None
        return self.label[len(KEY_PREFIX):]

    @property
    def field_length(self) -> Optional[int]:
        if not self.is_field:
            return None
        return int(self.label[len(FIELD_PREFIX):].split(":")[0])


class ClassificationModel:
    """Nearest-centroid model for one (device configuration, app) pair."""

    def __init__(
        self,
        labels: Sequence[str],
        centroids: np.ndarray,
        scale: np.ndarray,
        cth: float,
        model_key: str = "",
        metadata: Optional[Dict[str, object]] = None,
        deflate_direction: Optional[np.ndarray] = None,
    ) -> None:
        if centroids.ndim != 2 or centroids.shape[1] != features.DIMENSIONS:
            raise ValueError(
                f"centroids must be (n, {features.DIMENSIONS}), got {centroids.shape}"
            )
        if len(labels) != centroids.shape[0]:
            raise ValueError("labels and centroids length mismatch")
        if cth <= 0:
            raise ValueError("cth must be positive")
        self.labels = list(labels)
        self.centroids = centroids.astype(float)
        self.scale = scale.astype(float)
        self.cth = float(cth)
        self.model_key = model_key
        self.metadata = dict(metadata or {})
        self.deflate_direction = (
            None if deflate_direction is None else np.asarray(deflate_direction, dtype=float)
        )
        self._scaled = self._transform_rows(self.centroids / self.scale)
        self._scaled_sq = np.einsum("ij,ij->i", self._scaled, self._scaled)
        # raw (undeflated) scaled centroids for the masked path, which
        # operates in a subspace where the deflate direction is meaningless
        self._unit = self.centroids / self.scale
        self._unit_sq = self._unit ** 2
        self._composite_cache: Dict[Tuple[str, ...], Tuple[List[int], List[int], np.ndarray, np.ndarray]] = {}

    def _transform_rows(self, rows: np.ndarray) -> np.ndarray:
        """Apply the deflation projection (if any) to scaled-space rows."""
        if self.deflate_direction is None:
            return rows
        u = self.deflate_direction
        return rows - (rows @ u)[..., None] * u

    def with_deflation(self, direction: np.ndarray) -> "ClassificationModel":
        """A view of this model operating in the subspace orthogonal to
        ``direction`` (a unit vector in scaled feature space).

        Used against concurrent GPU workloads (Fig 22b): a background app
        adds an increment of unknown magnitude but stable direction to
        every counter read; classifying with that direction projected out
        of both observations and centroids removes the contamination.
        """
        return ClassificationModel(
            labels=self.labels,
            centroids=self.centroids,
            scale=self.scale,
            cth=self.cth,
            model_key=self.model_key,
            metadata=self.metadata,
            deflate_direction=direction,
        )

    # ------------------------------------------------------------------

    def classify_vector(self, vec: np.ndarray) -> Classification:
        """Nearest centroid with threshold; O(classes x dims) vectorized.

        This is the "inference" the paper times at <0.1 ms (Fig 25).
        Delegates to :meth:`classify_batch` with a single row so the
        streaming and batched paths share one numeric kernel and cannot
        drift.
        """
        return self.classify_batch(vec[None, :])[0]

    def classify(self, delta) -> Classification:
        return self.classify_vector(features.vectorize(delta))

    def classify_vector_masked(
        self, vec: np.ndarray, present: np.ndarray
    ) -> Classification:
        """Nearest centroid over the *observed* dimensions only.

        When counters are missing from a delta (register reclaimed by
        another KGSL client), their dimensions carry no information, so
        the distance is computed over the present dimensions and scaled
        by ``sqrt(D/d)`` to stay comparable with the full-vector ``cth``
        (the expected squared distance grows linearly with dimensions).
        Deflation is skipped: the deflate direction is not meaningful in
        a subspace.  ``confidence`` reports the observed fraction d/D.
        Like :meth:`classify_vector`, a one-row :meth:`classify_batch`.
        """
        present = np.asarray(present, dtype=bool)
        return self.classify_batch(vec[None, :], present[None, :])[0]

    def classify_batch(
        self, matrix: np.ndarray, present: Optional[np.ndarray] = None
    ) -> List[Classification]:
        """Classify ``n`` feature rows against every centroid in one pass.

        ``matrix`` is ``(n, DIMENSIONS)``; ``present`` is an optional
        boolean mask of the same shape marking which dimensions were
        actually observed per row (``None`` means fully observed).  Rows
        split into two vectorized sub-batches:

        * **full rows** (all dimensions present) go through the deflated
          scaled space exactly like ``classify_vector`` always has;
        * **masked rows** compute distances over their present dimensions
          only — the per-row dimension counts ``d`` give the ``sqrt(D/d)``
          threshold correction and the ``d/D`` confidence — using a
          mask-weighted expansion of the same GEMM (missing dimensions
          are zeroed out of all three terms), so no per-mask centroid
          slicing is needed.

        The single-vector entry points delegate here, which is what makes
        the ≥5x batch speedup at n=256 free of semantic drift.
        """
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != features.DIMENSIONS:
            raise ValueError(
                f"matrix must be (n, {features.DIMENSIONS}), got {matrix.shape}"
            )
        n = matrix.shape[0]
        if n == 0:
            return []
        dims = features.DIMENSIONS
        if present is None:
            counts = np.full(n, dims)
            full_rows = np.ones(n, dtype=bool)
        else:
            present = np.asarray(present, dtype=bool)
            if present.shape != matrix.shape:
                raise ValueError("present mask must match matrix shape")
            counts = present.sum(axis=1)
            full_rows = counts == dims
        distances = np.empty(n)
        best = np.zeros(n, dtype=int)
        confidence = np.ones(n)
        if full_rows.any():
            scaled = self._transform_rows(matrix[full_rows] / self.scale)
            sq = scaled_sq_dists(scaled, self._scaled, self._scaled_sq)
            idx = np.argmin(sq, axis=1)
            distances[full_rows] = np.sqrt(sq[np.arange(len(idx)), idx])
            best[full_rows] = idx
        if present is not None and not full_rows.all():
            masked_rows = ~full_rows & (counts > 0)
            if masked_rows.any():
                mask = present[masked_rows]
                observed = np.where(mask, matrix[masked_rows] / self.scale, 0.0)
                sq = (
                    np.einsum("ij,ij->i", observed, observed)[:, None]
                    - 2.0 * (observed @ self._unit.T)
                    + mask.astype(float) @ self._unit_sq.T
                )
                np.maximum(sq, 0.0, out=sq)
                idx = np.argmin(sq, axis=1)
                d = counts[masked_rows]
                distances[masked_rows] = np.sqrt(
                    sq[np.arange(len(idx)), idx]
                ) * np.sqrt(dims / d)
                best[masked_rows] = idx
                confidence[masked_rows] = d / dims
            empty_rows = counts == 0
            distances[empty_rows] = np.inf
            confidence[empty_rows] = 0.0
        out: List[Classification] = []
        for i in range(n):
            distance = float(distances[i])
            conf = float(confidence[i])
            if not np.isfinite(distance) or distance > self.cth:
                out.append(
                    Classification(label=None, distance=distance, confidence=conf)
                )
            else:
                out.append(
                    Classification(
                        label=self.labels[int(best[i])],
                        distance=distance,
                        confidence=conf,
                    )
                )
        return out

    def classify_composite(
        self,
        vec: np.ndarray,
        subtract_prefixes: Tuple[str, ...] = ("reject:dismiss", "field:"),
        field_lengths: Optional[Sequence[int]] = None,
    ) -> Classification:
        """Best key interpretation of ``vec`` minus one known non-key class.

        Fast typing can land the previous popup's dismissal — or a text
        field redraw (echo, cursor blink) — in the same counter read as the
        next key press; the composite change is then the sum of a known
        signature and a press signature.  Since the offline phase learned
        every dismiss and field centroid, the engine can search over
        ``vec - centroid`` residuals for a key match.  Wrong subtraction
        candidates leave large (often negative) residuals and lose on
        distance, so no clamping is needed.
        """
        cached = self._composite_cache.get(subtract_prefixes)
        if cached is None:
            sub_rows = [
                i
                for i, label in enumerate(self.labels)
                if label.startswith(subtract_prefixes)
            ]
            key_rows = [
                i for i, label in enumerate(self.labels) if label.startswith(KEY_PREFIX)
            ]
            subs = self._scaled[sub_rows] if sub_rows else np.empty((0, 0))
            keys = self._scaled[key_rows] if key_rows else np.empty((0, 0))
            # composite centroid grid: sub + key, flattened to (s*k, d),
            # with squared norms precomputed for the gemm distance trick
            if sub_rows and key_rows:
                grid = subs[:, None, :] + keys[None, :, :]
                grid = grid.reshape(-1, subs.shape[1])
                norms = np.einsum("ij,ij->i", grid, grid)
            else:
                grid = np.empty((0, 0))
                norms = np.empty(0)
            cached = (sub_rows, key_rows, grid, norms)
            self._composite_cache[subtract_prefixes] = cached
        sub_rows, key_rows, grid, norms = cached
        if not sub_rows or not key_rows:
            return Classification(label=None, distance=float("inf"))
        scaled = self._transform_rows(vec / self.scale)
        # ||g - v||^2 = ||g||^2 - 2 g.v + ||v||^2, minimized over the grid
        scores = norms - 2.0 * (grid @ scaled)
        if field_lengths is not None:
            # restrict field-family subtraction candidates to lengths near
            # the correction tracker's current estimate; the attacker knows
            # how long the input is, so distant lengths are impossible
            allowed = set(field_lengths)
            k = len(key_rows)
            for si, row in enumerate(sub_rows):
                label = self.labels[row]
                if label.startswith(FIELD_PREFIX):
                    length = int(label.split(":")[1])
                    if length not in allowed:
                        scores[si * k : (si + 1) * k] = np.inf
        flat = int(np.argmin(scores))
        if not np.isfinite(scores[flat]):
            return Classification(label=None, distance=float("inf"))
        distance = float(np.sqrt(max(0.0, scores[flat] + float(scaled @ scaled))))
        if distance > self.cth * COMPOSITE_CTH_FACTOR:
            return Classification(label=None, distance=distance)
        best_key = key_rows[flat % len(key_rows)]
        return Classification(label=self.labels[best_key], distance=distance)

    # ------------------------------------------------------------------

    @property
    def key_labels(self) -> List[str]:
        return [label for label in self.labels if label.startswith(KEY_PREFIX)]

    def centroid(self, label: str) -> np.ndarray:
        return self.centroids[self.labels.index(label)]

    def size_bytes(self) -> int:
        """Serialized model size — the paper reports ~3.59 KB per model."""
        return len(self.to_json().encode("utf-8"))

    # ------------------------------------------------------------------
    # Serialization (the models are preloaded into the attack APK)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "model_key": self.model_key,
            "labels": self.labels,
            "centroids": [[round(x, 2) for x in row] for row in self.centroids.tolist()],
            "scale": [round(x, 4) for x in self.scale.tolist()],
            "cth": self.cth,
            "metadata": self.metadata,
        }

    def to_json(self) -> str:
        import json

        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ClassificationModel":
        return cls(
            labels=list(data["labels"]),  # type: ignore[arg-type]
            centroids=np.array(data["centroids"], dtype=float),
            scale=np.array(data["scale"], dtype=float),
            cth=float(data["cth"]),  # type: ignore[arg-type]
            model_key=str(data.get("model_key", "")),
            metadata=dict(data.get("metadata") or {}),  # type: ignore[arg-type]
        )

    @classmethod
    def from_json(cls, text: str) -> "ClassificationModel":
        import json

        return cls.from_dict(json.loads(text))


def build_model(
    samples_by_label: Mapping[str, Sequence[np.ndarray]],
    model_key: str = "",
    cth_margin: float = 2.0,
    min_cth: float = 0.35,
    metadata: Optional[Dict[str, object]] = None,
) -> ClassificationModel:
    """Fit centroids and the classification threshold from labeled samples.

    ``cth`` follows the paper's procedure: large enough to absorb the worst
    intra-class spread observed offline (times a safety margin) so genuine
    key presses are never rejected.  False positives on recurring system
    events are prevented structurally — every such event has its own
    reject centroid, which is always nearer than any key centroid — while
    out-of-vocabulary changes (merged events, other-app activity) fall
    outside ``cth`` of everything and classify as noise.  Pairs of nearly
    identical key popups (',' vs '.') remain nearest-centroid rivals, which
    is exactly where the paper's Fig 18 errors concentrate.
    """
    labels: List[str] = []
    centroid_rows: List[np.ndarray] = []
    key_rows: List[np.ndarray] = []
    all_rows: List[np.ndarray] = []
    for label, vectors in sorted(samples_by_label.items()):
        if not len(vectors):
            continue
        matrix = np.vstack(vectors)
        labels.append(label)
        centroid_rows.append(np.median(matrix, axis=0))
        all_rows.append(matrix)
        if label.startswith(KEY_PREFIX):
            key_rows.append(matrix)
    if not labels:
        raise ValueError("no labeled samples to build a model from")
    centroids = np.vstack(centroid_rows)
    # The normalization scale must reflect the *discriminative* spread —
    # the differences between key popups — not the huge full-screen
    # transition classes, which would otherwise collapse all key clusters
    # onto each other in normalized space.
    scale_rows = np.vstack(key_rows) if key_rows else np.vstack(all_rows)
    scale = features.robust_scale(scale_rows)

    # Worst intra-class radius in normalized space.  Only key classes
    # matter for the threshold: cth must accept every genuine key press;
    # reject classes win by proximity, not by threshold.
    key_labels = [label for label in labels if label.startswith(KEY_PREFIX)]
    relevant = key_labels if key_labels else labels
    intra = 0.0
    for label, row in zip(labels, centroids):
        if label not in relevant:
            continue
        vectors = np.vstack(samples_by_label[label])
        # same GEMM kernel the online classify_batch path runs on
        sq = scaled_sq_dists(vectors / scale, (row / scale)[None, :])
        intra = max(intra, float(np.sqrt(np.max(sq))))

    cth = max(min_cth, intra * cth_margin)
    return ClassificationModel(
        labels=labels,
        centroids=centroids,
        scale=scale,
        cth=cth,
        model_key=model_key,
        metadata=metadata,
    )
