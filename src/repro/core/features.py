"""Feature extraction: PC deltas as vectors in counter space.

Each GPU PC value change is an 11-dimensional integer vector over the
selected counters of Table 1 (in :data:`repro.gpu.timeline.COUNTER_ORDER`).
The classifier of Section 5.1 / Fig 12 operates on these vectors in "a
high-dimension space" spanned by all selected PCs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

import numpy as np

from repro.gpu import counters as pc
from repro.gpu.timeline import COUNTER_ORDER
from repro.kgsl.sampler import PcDelta

#: Number of feature dimensions (= selected counters).
DIMENSIONS = len(COUNTER_ORDER)

_INDEX: Dict[pc.CounterId, int] = {cid: i for i, cid in enumerate(COUNTER_ORDER)}


def vectorize(delta: PcDelta) -> np.ndarray:
    """One delta as a float vector in the canonical counter order."""
    vec = np.zeros(DIMENSIONS, dtype=float)
    for counter_id, value in delta.values.items():
        index = _INDEX.get(counter_id)
        if index is not None:
            vec[index] = float(value)
    return vec


def vectorize_mapping(values: Mapping[pc.CounterId, int]) -> np.ndarray:
    """A raw counter-id mapping as a feature vector."""
    vec = np.zeros(DIMENSIONS, dtype=float)
    for counter_id, value in values.items():
        index = _INDEX.get(counter_id)
        if index is not None:
            vec[index] = float(value)
    return vec


def vectorize_many(deltas: Iterable[PcDelta]) -> np.ndarray:
    """Stack of feature vectors, shape (n, DIMENSIONS)."""
    rows = [vectorize(d) for d in deltas]
    if not rows:
        return np.zeros((0, DIMENSIONS), dtype=float)
    return np.vstack(rows)


def counter_index(spec: pc.CounterSpec) -> int:
    """Column index of one counter in the feature vector."""
    return _INDEX[spec.counter_id]


def present_mask(missing: Sequence[pc.CounterId]) -> np.ndarray:
    """Boolean mask over feature dimensions: True where the counter was
    actually observed (i.e. *not* in the delta's ``missing`` list).

    Used by masked classification when a counter register was reclaimed
    by another KGSL client mid-session."""
    mask = np.ones(DIMENSIONS, dtype=bool)
    for counter_id in missing:
        index = _INDEX.get(counter_id)
        if index is not None:
            mask[index] = False
    return mask


def robust_scale(matrix: np.ndarray, floor: float = 1.0) -> np.ndarray:
    """Per-dimension scale for distance normalization.

    Uses the standard deviation across all training vectors — the
    discriminative spread — floored so constant dimensions (e.g. exact
    primitive counts) still contribute rather than dividing by zero.
    """
    if matrix.size == 0:
        return np.full(DIMENSIONS, floor, dtype=float)
    spread = np.std(matrix, axis=0)
    return np.maximum(spread, floor)


def normalized_distance(a: np.ndarray, b: np.ndarray, scale: np.ndarray) -> float:
    """Scale-normalized Euclidean distance between two feature vectors."""
    diff = (a - b) / scale
    return float(np.sqrt(np.dot(diff, diff)))
