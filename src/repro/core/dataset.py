"""Persistence for offline-phase training data.

The paper's offline phase runs on a fleet of rooted devices; collected PC
data "is stored in the device's local storage" (Section 6) and shipped to
the attacker for model construction.  This module serializes
:class:`~repro.core.offline.TrainingData` so collection and training can
run on different machines — and so experiments can retrain models without
re-simulating the bot.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.core.offline import TrainingData

#: Format version written into every dataset file.
FORMAT_VERSION = 1


def save_training_data(data: TrainingData, path: Union[str, Path]) -> None:
    """Write a dataset as compressed npz with a JSON manifest inside."""
    path = Path(path)
    arrays: Dict[str, np.ndarray] = {}
    labels: List[str] = []
    for index, (label, vectors) in enumerate(sorted(data.vectors_by_label.items())):
        arrays[f"class_{index}"] = np.vstack(vectors)
        labels.append(label)
    manifest = {
        "version": FORMAT_VERSION,
        "labels": labels,
        "clean_windows": data.clean_windows,
        "discarded_windows": data.discarded_windows,
    }
    arrays["manifest"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_training_data(path: Union[str, Path]) -> TrainingData:
    """Read a dataset written by :func:`save_training_data`."""
    path = Path(path)
    with np.load(path) as archive:
        manifest = json.loads(bytes(archive["manifest"]).decode("utf-8"))
        if manifest.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset version {manifest.get('version')!r}"
            )
        data = TrainingData(
            clean_windows=int(manifest["clean_windows"]),
            discarded_windows=int(manifest["discarded_windows"]),
        )
        for index, label in enumerate(manifest["labels"]):
            matrix = archive[f"class_{index}"]
            data.vectors_by_label[label] = [row for row in np.asarray(matrix, dtype=float)]
    return data
