"""Input-correction tracking (paper Section 5.3, Fig 14).

Backspace shows no popup, so deletions are invisible to the key-press
classifier.  But every text-field redraw carries the current input length
(the PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ value "strictly increases by 2 with a
new input character and decreases by 2 whenever an input character is
deleted").  In the model, field redraws classify into the ``field:<n>``
family, so the tracker observes the length ``n`` directly.

The tracker reconciles the length sequence with the engine's key-press
count around one invariant: **over any validated span, the number of
deletions equals the keys inferred minus the net length growth.**  An
observation is *validated* when the next observation's length equals it
plus the key presses inferred in between (a cursor blink validates at
equal length; an echo validates through its typed key).  A partial read
misclassified as a shorter field never validates, so it can never fire a
false deletion — while a quick backspace-and-retype, whose dip is visible
for only a single observation, is still committed because the extra key
press does not show up as field growth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class LengthObservation:
    """One observed text-field redraw."""

    t: float
    length: int
    keys_total: int = 0


@dataclass(frozen=True)
class CorrectionEvent:
    """One detected deletion (backspace press)."""

    t: float


class CorrectionTracker:
    """Reconciles field-length observations with inferred key presses."""

    def __init__(self) -> None:
        self.observations: List[LengthObservation] = []
        self.deletions: List[CorrectionEvent] = []
        self.unattributed_growth = 0
        self._validated: Optional[LengthObservation] = None
        self._pending: Optional[LengthObservation] = None
        self._dip_times: List[Tuple[float, int]] = []

    @property
    def current_length(self) -> Optional[int]:
        return self._validated.length if self._validated is not None else None

    def length_bounds(self) -> Optional[Tuple[int, int]]:
        """Smallest and largest plausible current field length, spanning
        the last validated value and any pending observation."""
        candidates = []
        if self._validated is not None:
            candidates.append(self._validated.length)
        if self._pending is not None:
            candidates.append(self._pending.length)
        if not candidates:
            return None
        return (min(candidates), max(candidates))

    # ------------------------------------------------------------------

    def _commit(self, pending: LengthObservation) -> List[CorrectionEvent]:
        """The pending observation was validated: settle the span from the
        last validated observation up to it."""
        assert self._validated is not None
        typed = pending.keys_total - self._validated.keys_total
        growth = pending.length - self._validated.length
        excess = typed - growth
        emitted: List[CorrectionEvent] = []
        if excess > 0:
            # keys that never showed up as field growth were deleted (or
            # were spurious inferences).  Each deletion needs a witnessed
            # dip: without that cap, a stretch of misread field lengths
            # (e.g. under heavy background contamination) could wipe out
            # genuine keys wholesale.
            dips: List[float] = []
            for dip_t, amount in self._dip_times:
                if dip_t > self._validated.t:
                    dips.extend([dip_t] * amount)
            if typed > 0 and not dips:
                dips = [pending.t]
            for j in range(min(excess, len(dips))):
                event = CorrectionEvent(t=dips[min(j, len(dips) - 1)])
                self.deletions.append(event)
                emitted.append(event)
        elif excess < 0:
            # field grew beyond the inferred keys: presses were missed
            self.unattributed_growth += -excess
        self._validated = pending
        self._dip_times = [(t, a) for t, a in self._dip_times if t > pending.t]
        return emitted

    def observe(
        self, t: float, length: int, keys_inferred_total: int = 0
    ) -> List[CorrectionEvent]:
        """Process one field redraw; return the deletions it commits.

        Args:
            t: event time.
            length: input length carried by the redraw.
            keys_inferred_total: cumulative key presses the engine has
                inferred so far.
        """
        obs = LengthObservation(t=t, length=length, keys_total=keys_inferred_total)
        self.observations.append(obs)

        if self._validated is None:
            self._validated = obs
            return []

        emitted: List[CorrectionEvent] = []
        if self._pending is not None:
            expected = self._pending.length + (keys_inferred_total - self._pending.keys_total)
            if length == expected:
                emitted = self._commit(self._pending)
            elif length < self._pending.length:
                self._dip_times.append((t, self._pending.length - length))
        elif length < self._validated.length:
            self._dip_times.append((t, self._validated.length - length))

        if length == self._validated.length and (
            keys_inferred_total == self._validated.keys_total
        ):
            # steady state (a blink at the settled length): nothing pending
            self._pending = None
        else:
            self._pending = obs
        return emitted
