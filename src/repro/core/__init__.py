"""The attack: feature extraction, classification, online inference."""
