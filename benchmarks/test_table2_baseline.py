"""Table 2: the desktop-Nvidia-counter baseline (prior work [37]).

Workload-level GPU counters cannot resolve key presses: across gedit, the
Gmail login page and the Dropbox client, Naive Bayes / kNN3 / Random
Forest stay below ~14 %, with the Random Forest the best of the three —
while the mobile overdraw attack exceeds 95 % per key on the same task.
"""

import numpy as np

from conftest import run_once, scaled
from repro.analysis.experiments import run_credential_batch
from repro.baselines.knn import KNearestNeighbors
from repro.baselines.naive_bayes import GaussianNaiveBayes
from repro.baselines.nvidia import DESKTOP_CONTEXTS, DesktopGpuSampler
from repro.baselines.random_forest import RandomForest

CHARS = "abcdefghijklmnopqrstuvwxyz"


def _table(train_repeats, test_repeats):
    rows = {}
    for name, context in DESKTOP_CONTEXTS.items():
        sampler = DesktopGpuSampler(context, rng=np.random.default_rng(2))
        Xtr, ytr = sampler.collect(CHARS, repeats=train_repeats)
        Xte, yte = sampler.collect(CHARS, repeats=test_repeats)
        rows[name] = {
            "Naive Bayes": GaussianNaiveBayes().fit(Xtr, ytr).score(Xte, yte),
            "KNN3": KNearestNeighbors(3).fit(Xtr, ytr).score(Xte, yte),
            "Random Forest": RandomForest(n_trees=40, max_depth=10, seed=3)
            .fit(Xtr, ytr)
            .score(Xte, yte),
        }
    return rows


def test_table2_baseline_accuracy(benchmark):
    rows = run_once(benchmark, lambda: _table(scaled(10), scaled(8)))

    print("\nTable 2 — desktop Nvidia PC baseline (paper: 8.7-14.2%):")
    print(f"{'classifier':15s} " + " ".join(f"{name:>15s}" for name in rows))
    for clf in ("Naive Bayes", "KNN3", "Random Forest"):
        print(f"{clf:15s} " + " ".join(f"{rows[ctx][clf]:15.3f}" for ctx in rows))

    for context, scores in rows.items():
        for clf, acc in scores.items():
            assert acc < 0.20, f"{clf} on {context} must stay in the paper's band"
            assert acc > 1.0 / 26 / 3, f"{clf} on {context} should beat random/3"

    # the Random Forest is the strongest baseline on average (paper's row order)
    means = {
        clf: np.mean([rows[ctx][clf] for ctx in rows])
        for clf in ("Naive Bayes", "KNN3", "Random Forest")
    }
    assert means["Random Forest"] >= max(means["Naive Bayes"], means["KNN3"]) - 0.01


def test_table2_mobile_attack_dwarfs_baseline(benchmark, config, chase):
    """Section 7.1's point: the overdraw attack is an order of magnitude
    more accurate than the workload-counter baseline."""
    batch = run_once(
        benchmark,
        lambda: run_credential_batch(config, chase, n_texts=scaled(10), seed=22),
    )
    baseline_best = 0.15
    print(
        f"\nmobile attack per-key accuracy {batch.key_accuracy:.3f} "
        f"vs best desktop baseline ~{baseline_best}"
    )
    assert batch.key_accuracy > 4 * baseline_best
