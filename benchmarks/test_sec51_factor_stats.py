"""Section 5.1's factor statistics.

The paper investigates 3,485 key presses and finds 633 duplication cases,
316 split cases and 21 high-system-noise cases (~18 %, ~9 %, ~0.6 %).  We
regenerate the counting over a (scaled) press population and assert the
proportions land in the same bands, with the same ordering
duplication > split >> noise.
"""

import numpy as np

from conftest import run_once, scaled
from repro.android.device import VictimDevice
from repro.android.events import KeyPress, NotificationArrival
from repro.kgsl.device_file import DeviceClock, open_kgsl
from repro.kgsl.sampler import PerfCounterSampler
from repro.workloads.credentials import balanced_character_stream


def _collect(config, chase, presses):
    rng = np.random.default_rng(51)
    chars = balanced_character_stream(rng, max(1, presses // 80 + 1))[:presses]
    duplications = splits = noisy = 0
    chunk = 150
    for start in range(0, len(chars), chunk):
        part = chars[start : start + chunk]
        times = np.cumsum(rng.uniform(0.35, 0.65, size=len(part))) + 0.6
        events = [KeyPress(t=float(t), char=c) for t, c in zip(times, part)]
        end = float(times[-1]) + 1.0
        # sprinkle notifications as the ambient noise source
        t = float(rng.exponential(8.0))
        while t < end:
            events.append(NotificationArrival(t=t))
            t += float(rng.exponential(8.0))
        device = VictimDevice(config, chase, rng=np.random.default_rng(510 + start))
        trace = device.compile(events, end_time_s=end)
        kgsl = open_kgsl(trace.timeline, clock=DeviceClock())
        sampler = PerfCounterSampler(kgsl, rng=np.random.default_rng(5100 + start))
        samples = sampler.sample_range(0.0, end)
        read_times = np.array([s.t for s in samples])

        frames = trace.timeline.frames
        noise_frames = [f for f in frames if f.label == "notification"]
        for frame in frames:
            if frame.label.startswith("press_dup"):
                duplications += 1
            elif frame.label.startswith("press:"):
                n = np.searchsorted(read_times, frame.start_s, side="right")
                if n < len(read_times) and read_times[n] < frame.end_s:
                    splits += 1
                # high system noise: an ambient frame lands in the same
                # read window as the press
                lo = read_times[n - 1] if n > 0 else 0.0
                hi = read_times[n] if n < len(read_times) else end
                if any(lo < nf.start_s <= hi for nf in noise_frames):
                    noisy += 1
    return duplications, splits, noisy, len(chars)


def test_sec51_factor_proportions(benchmark, config, chase):
    presses = scaled(640)
    dup, split, noisy, total = run_once(benchmark, lambda: _collect(config, chase, presses))
    print(
        f"\nSection 5.1 factors over {total} presses "
        f"(paper: 633/316/21 of 3485 = 18.2%/9.1%/0.6%):\n"
        f"  duplication: {dup} ({100*dup/total:.1f}%)\n"
        f"  split:       {split} ({100*split/total:.1f}%)\n"
        f"  high noise:  {noisy} ({100*noisy/total:.1f}%)"
    )
    assert 0.10 < dup / total < 0.28, "duplication rate must be in the paper's band"
    # our GPU power-collapse model makes the slow bot cadence pay a
    # wake-up render on every press, so splits run above the paper's
    # 9% (see EXPERIMENTS.md); the ordering and magnitude band hold
    assert 0.03 < split / total < 0.30, "split rate must be in band"
    assert noisy / total < 0.05, "high-noise cases must be rare"
    assert min(dup, split) > noisy, "high-noise cases are the rarest factor"
