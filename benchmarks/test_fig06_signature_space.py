"""Fig 6: PC value changes of different key popups in (LRZ, RAS) space.

The paper scatters one LRZ PC against one RAS PC and shows every key in
its own tight cluster, with visually-similar glyphs (',' '.') closest
together.  We regenerate the scatter from the offline-trained model's
key centroids.
"""

import numpy as np

from conftest import run_once
from repro.analysis.experiments import cached_model
from repro.core import features
from repro.gpu import counters as pc


def test_fig06_per_key_clusters(benchmark, config, chase):
    model = run_once(benchmark, lambda: cached_model(config, chase))

    x_dim = features.counter_index(pc.LRZ_FULL_8X8_TILES)
    y_dim = features.counter_index(pc.RAS_SUPERTILE_ACTIVE_CYCLES)

    print("\nFig 6 — key press signatures (LRZ_FULL_8X8_TILES, RAS_SUPERTILE_ACTIVE_CYCLES):")
    points = {}
    for label in model.key_labels:
        char = label[len("key:"):]
        centroid = model.centroid(label)
        points[char] = (centroid[x_dim], centroid[y_dim])
    for char in "abcdefghij,.":
        x, y = points[char]
        print(f"  {char!r}: LRZ={x:8.0f}  RAS={y:9.0f}")

    # every key occupies a distinct point in the full feature space
    seen = set()
    for label in model.key_labels:
        key = tuple(np.round(model.centroid(label), 0))
        assert key not in seen
        seen.add(key)

    # ',' and '.' sit closer to each other than typical letter pairs,
    # mirroring the figure's bottom-left cluster of faint glyphs
    def dist(a, b):
        return features.normalized_distance(
            model.centroid(f"key:{a}"), model.centroid(f"key:{b}"), model.scale
        )

    punct = dist(",", ".")
    letters = "abcdefghijklmnopqrstuvwxyz"
    letter_dists = [
        dist(a, b) for i, a in enumerate(letters) for b in letters[i + 1:]
    ]
    assert punct < np.median(letter_dists), (
        "',' vs '.' must be among the hardest pairs (minimum overdraw)"
    )
    print(f"  d(',', '.') = {punct:.3f} vs median letter-pair distance {np.median(letter_dists):.3f}")


def test_fig06_keys_separable_above_jitter(benchmark, config, chase):
    """Inter-key distances dwarf intra-key spread for letters — the basis
    of 'repetitive presses always result in the same change'."""
    model = run_once(benchmark, lambda: cached_model(config, chase))
    letters = "abcdefghijklmnopqrstuvwxyz"
    dists = []
    for i, a in enumerate(letters):
        for b in letters[i + 1:]:
            dists.append(
                features.normalized_distance(
                    model.centroid(f"key:{a}"), model.centroid(f"key:{b}"), model.scale
                )
            )
    # cth absorbs the observed intra-class spread; letter pairs must be
    # separated by more than cth on the whole
    frac_above = np.mean([d > model.cth for d in dists])
    print(f"\nletter pairs separated beyond cth: {frac_above * 100:.1f}%")
    assert frac_above > 0.95
