"""Ablation: the online engine's components (DESIGN.md design choices).

The published Algorithm 1 handles duplication (Δt1 backtrace), split
(pairwise recombination) and noise (classifier rejection).  On top of it
this implementation adds collision recovery (duplication halving,
dismiss/field composite subtraction, ambient deflation) and field-length
correction tracking.  This bench quantifies each layer's contribution.
"""

import numpy as np

from conftest import run_once, scaled
from repro.analysis.experiments import run_credential_batch
from repro.workloads.credentials import credential_batch


def test_ablation_collision_recovery(benchmark, config, chase):
    texts = credential_batch(np.random.default_rng(77), scaled(20))

    def run():
        full = run_credential_batch(config, chase, seed=7700, texts=texts)
        plain = run_credential_batch(
            config, chase, seed=7700, texts=texts, recover_collisions=False
        )
        return full, plain

    full, plain = run_once(benchmark, run)
    print(
        f"\nengine ablation — collision recovery:\n"
        f"  Algorithm 1 (paper):     text={plain.text_accuracy:.3f} key={plain.key_accuracy:.3f}\n"
        f"  + collision recovery:    text={full.text_accuracy:.3f} key={full.key_accuracy:.3f}"
    )
    assert full.key_accuracy >= plain.key_accuracy, (
        "collision recovery must never hurt per-key accuracy"
    )
    assert full.text_accuracy >= plain.text_accuracy - 0.05


def test_ablation_correction_tracking(benchmark, config, chase):
    """Without Section 5.3 tracking, deleted characters stay in the
    inferred credential."""
    from repro.analysis.metrics import edit_distance
    from repro.android.device import VictimDevice
    from repro.analysis.experiments import single_model_attack
    from repro.workloads.behavior import typing_with_corrections
    from repro.workloads.typing_model import TypingModel

    def run():
        tracked = single_model_attack(config, chase)
        untracked = single_model_attack(config, chase, track_corrections=False)
        errors_tracked = errors_untracked = 0
        for seed in range(scaled(8)):
            rng = np.random.default_rng(7800 + seed)
            events, final = typing_with_corrections(
                "correctme1", TypingModel(rng), rng, typo_prob=0.6
            )
            device = VictimDevice(config, chase, rng=rng)
            end = max(e.t for e in events) + 2.5
            trace = device.compile(events, end_time_s=end)
            a = tracked.run_on_trace(trace, seed=7900 + seed)
            b = untracked.run_on_trace(trace, seed=7900 + seed)
            errors_tracked += edit_distance(a.text, final)
            errors_untracked += edit_distance(b.text, final)
        return errors_tracked, errors_untracked

    errors_tracked, errors_untracked = run_once(benchmark, run)
    print(
        f"\nengine ablation — correction tracking: "
        f"errors with={errors_tracked}, without={errors_untracked}"
    )
    assert errors_tracked < errors_untracked, (
        "Section 5.3 tracking must remove deleted characters"
    )


def test_ablation_switch_detection(benchmark, config, chase):
    """Without Section 5.2 detection, other-app activity pollutes the
    inference with suppressed-context events."""
    from repro.android.device import VictimDevice
    from repro.android.events import AppSwitchAway, AppSwitchBack, KeyPress
    from repro.analysis.experiments import single_model_attack
    from repro.analysis.metrics import edit_distance

    def run():
        with_det = single_model_attack(config, chase)
        without = single_model_attack(config, chase, detect_switches=False)
        text = "abcdef"
        events = [KeyPress(t=0.6 + 0.4 * i, char=c) for i, c in enumerate(text)]
        events += [AppSwitchAway(t=3.4), AppSwitchBack(t=12.0)]
        errors_with = errors_without = 0
        for seed in range(scaled(6)):
            device = VictimDevice(config, chase, rng=np.random.default_rng(7950 + seed))
            trace = device.compile(events, end_time_s=13.5)
            a = with_det.run_on_trace(trace, seed=7980 + seed)
            b = without.run_on_trace(trace, seed=7980 + seed)
            errors_with += edit_distance(a.text, text)
            errors_without += edit_distance(b.text, text)
        return errors_with, errors_without

    errors_with, errors_without = run_once(benchmark, run)
    print(
        f"\nengine ablation — app-switch detection: "
        f"errors with={errors_with}, without={errors_without}"
    )
    assert errors_with <= errors_without
