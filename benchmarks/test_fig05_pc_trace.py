"""Fig 5: PC value variations due to key presses and system factors.

Regenerates the PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ trace for a 'w n w n'
typing sequence and verifies the figure's three observations: values only
change when the screen changes; each key has a repeatable, unique first
change; duplication shows up as two consecutive identical changes.
"""

import numpy as np

from conftest import run_once
from repro.android.device import VictimDevice
from repro.android.events import KeyPress
from repro.gpu import counters as pc
from repro.kgsl.device_file import DeviceClock, open_kgsl
from repro.kgsl.sampler import PerfCounterSampler, nonzero_deltas


def _trace(config, chase):
    events = [KeyPress(t=0.6 + 0.6 * i, char="wnwn"[i % 4]) for i in range(12)]
    device = VictimDevice(config, chase, rng=np.random.default_rng(5))
    trace = device.compile(events, end_time_s=0.6 + 12 * 0.6 + 1.0)
    kgsl = open_kgsl(trace.timeline, clock=DeviceClock())
    sampler = PerfCounterSampler(kgsl, rng=np.random.default_rng(55))
    samples = sampler.sample_range(0.0, trace.end_time_s)
    return trace, samples


def test_fig05_pc_trace(benchmark, config, chase):
    trace, samples = run_once(benchmark, lambda: _trace(config, chase))

    frames = trace.timeline.frames
    press_deltas = {"w": [], "n": []}
    print("\nFig 5 — PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ changes:")
    for delta in nonzero_deltas(samples):
        labels = [f.label for f in frames if f.start_s < delta.t and f.end_s > delta.prev_t]
        lrz13 = delta.get(pc.LRZ_VISIBLE_PRIM_AFTER_LRZ, default=0)
        if len(labels) == 1 and labels[0].startswith("press:"):
            char = labels[0].split(":")[1]
            press_deltas[char].append(delta.values)
            print(f"  t={delta.t:7.3f}s  key '{char}'  dLRZ13={lrz13}")

    # 1) no screen change -> no PC change: zero deltas dominate idle time
    zero = sum(1 for s, t in zip(samples, samples[1:]) if s.values == t.values)
    assert zero > len(samples) * 0.5

    # 2) per-key uniqueness and repeatability of the first change
    def totals(char):
        return [sum(v.values()) for v in press_deltas[char]]

    assert len(press_deltas["w"]) >= 2 and len(press_deltas["n"]) >= 2
    w_totals, n_totals = totals("w"), totals("n")
    assert np.std(w_totals) / np.mean(w_totals) < 0.02, "repeated 'w' must match"
    assert abs(np.mean(w_totals) - np.mean(n_totals)) > 3 * (
        np.std(w_totals) + np.std(n_totals) + 1
    ), "'w' and 'n' must be separable"
    print(f"  mean 'w' change={np.mean(w_totals):.0f}, mean 'n' change={np.mean(n_totals):.0f}")


def test_fig05_duplication_and_split_visible(benchmark, config, chase):
    """The figure's annotated 'Duplication' and 'Split' events occur."""

    def run():
        # human-like irregular intervals: a perfectly periodic bot can
        # resonate with the sampling grid and never produce a split
        rng = np.random.default_rng(8)
        times = np.cumsum(rng.uniform(0.4, 0.6, size=120)) + 0.6
        events = [KeyPress(t=float(t), char="w") for t in times]
        device = VictimDevice(config, chase, rng=np.random.default_rng(9))
        end = float(times[-1]) + 1.0
        trace = device.compile(events, end_time_s=end)
        kgsl = open_kgsl(trace.timeline, clock=DeviceClock())
        sampler = PerfCounterSampler(kgsl, rng=np.random.default_rng(99))
        return trace, sampler.sample_range(0.0, end)

    trace, samples = run_once(benchmark, run)
    dups = sum(1 for f in trace.timeline.frames if f.label.startswith("press_dup"))
    assert dups > 5, "Gboard's popup animation must produce duplications"

    splits = 0
    for frame in trace.timeline.frames:
        if not frame.label.startswith("press:"):
            continue
        inside = [s for s in samples if frame.start_s < s.t < frame.end_s]
        splits += bool(inside)
    print(f"\nFig 5 factors over 120 presses: duplications={dups}, split reads={splits}")
    assert splits > 0, "some reads must land mid-render (split)"
