"""Render throughput: batched numpy compositing vs the scalar reference.

The tile renderer backs every simulated frame the attack loop samples, so
its cost bounds how many sessions a fleet run can generate per second.
:meth:`AdrenoPipeline.render` stacks a scene's ops into parallel ndarrays
and composites the whole frame in one batched pass (occlusion solved on a
coordinate-compressed occluder grid via BLAS matmuls);
:meth:`AdrenoPipeline.render_reference` is the original per-op Python
walk, kept as the parity oracle.

The workload is the paper's hot frame: a full GBoard-style keyboard — 30
key caps with glyph ink quads over an opaque panel — plus the key-press
popup that drives the Section 3 signal.  The batched path must be >= 3x
the reference on this mix and integer-identical on every scene.

Headline numbers land in ``BENCH_render.json``.
"""

import random
import time

import pytest

from conftest import run_once, scaled, write_bench_manifest
from repro.android.geometry import Rect
from repro.android.layers import DrawOp, Layer, Scene, solid_quad
from repro.gpu.adreno import adreno
from repro.gpu.pipeline import AdrenoPipeline
from repro.obs import MetricsRegistry

pytestmark = pytest.mark.bench

#: Required advantage of the batched compositor over the scalar walk.
MIN_SPEEDUP = 3.0

KEYS = 30
SCENES = scaled(150)


def _keyboard_scene(rng: random.Random) -> Scene:
    """One keyboard frame: background, key caps + glyph ink, press popup."""
    background = Layer("bg").add(solid_quad(Rect(0, 0, 1080, 2280)))
    keyboard = Layer("kbd").add(solid_quad(Rect(0, 1500, 1080, 2280)))
    for _ in range(KEYS):
        x = rng.randrange(0, 980)
        y = rng.randrange(1500, 2150)
        keyboard.add(solid_quad(Rect(x, y, x + 96, y + 128)))
        keyboard.add(
            DrawOp(
                rect=Rect(x + 20, y + 30, x + 76, y + 98),
                coverage=rng.choice([0.2, 0.3, 0.4]),
                primitives=rng.randint(2, 8),
                textured=True,
            )
        )
    popup = Layer("popup").add(solid_quad(Rect(400, 1300, 560, 1500)))
    popup.add(
        DrawOp(
            rect=Rect(430, 1330, 530, 1470),
            coverage=0.35,
            primitives=4,
            textured=True,
        )
    )
    return Scene([background, keyboard, popup])


def _timed(fn):
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def test_vectorized_compositing_speedup(benchmark):
    rng = random.Random(650)
    scenes = [_keyboard_scene(rng) for _ in range(SCENES)]
    pipeline = AdrenoPipeline(adreno(650))

    def batched():
        return [pipeline.render(s) for s in scenes]

    def reference():
        return [pipeline.render_reference(s) for s in scenes]

    # parity first: the speed claim is worthless if the counters drift
    for scene in scenes[:20]:
        fast = pipeline.render(scene)
        slow = pipeline.render_reference(scene)
        assert fast.increment.values == slow.increment.values
        assert fast.pixels_touched == slow.pixels_touched

    batched(), reference()  # warm caches on both paths
    t_batch = min(_timed(batched) for _ in range(3))
    t_ref = min(_timed(reference) for _ in range(3))
    run_once(benchmark, batched)

    speedup = t_ref / t_batch
    rate_batch = SCENES / t_batch
    rate_ref = SCENES / t_ref
    ops = sum(len(layer.ops) for layer in scenes[0])
    print(f"\ntile compositing, {SCENES} keyboard scenes x {ops} ops:")
    print(f"  reference: {1e3 * t_ref:7.2f} ms  ({rate_ref:,.0f} scenes/s)")
    print(f"  batched  : {1e3 * t_batch:7.2f} ms  ({rate_batch:,.0f} scenes/s)")
    print(f"  speedup  : {speedup:.2f}x (floor {MIN_SPEEDUP:.1f}x)")
    assert speedup >= MIN_SPEEDUP, f"batched compositing only {speedup:.2f}x"

    registry = MetricsRegistry()
    registry.gauge("render.scenes").set(SCENES)
    registry.gauge("render.ops_per_scene").set(ops)
    registry.gauge("render.reference_scenes_per_s").set(rate_ref)
    registry.gauge("render.batched_scenes_per_s").set(rate_batch)
    registry.gauge("render.speedup").set(speedup)
    write_bench_manifest("render", registry, scenes=SCENES, keys=KEYS)
