"""Drift-recovery bench: the online signature lifecycle's headline claim.

One :class:`~repro.core.online.OnlineEngine` session streams repeated
credential entries while the ``thermal-harsh`` drift profile throttles
the GPU underneath it.  Three arms share the seed schedule:

1. **baseline** — no drift, frozen model (the undrifted reference);
2. **drift, frozen model** — the control arm: accuracy must *collapse*,
   otherwise the drift isn't strong enough to make recovery meaningful;
3. **drift + calibration** — the lifecycle: suspect signals trip the
   :class:`~repro.lifecycle.calibration.CalibrationService`, the
   signature is re-fit from drained evidence, and the engine hot-swaps
   the model mid-session.

The pinned claim: **post-recalibration exact-credential accuracy is
>= 90 % of the undrifted baseline, without a session restart** — while
the frozen arm under the same drift recovers nothing.

Writes ``BENCH_lifecycle.json`` (per-arm accuracies, recovery ratio,
recalibration count) as the machine-readable record; CI uploads it as
an artifact.
"""

import pytest

from repro.lifecycle import run_lifecycle
from repro.obs import MetricsRegistry
from conftest import run_once, write_bench_manifest

pytestmark = pytest.mark.bench

#: The acceptance floor: recovered exact accuracy / baseline exact
#: accuracy with calibration on.
RECOVERY_FLOOR = 0.9

#: The control arm must actually be hurt by the drift, or the recovery
#: claim is vacuous.
DRIFTED_CEILING = 0.5

SEGMENTS = 6
SEED = 24


def _arm(drift, calibration):
    return run_lifecycle(
        segments=SEGMENTS,
        seed=SEED,
        drift=drift,
        calibration=calibration,
    )


def test_drift_recovery(benchmark):
    def experiment():
        baseline = _arm(drift=None, calibration=None)
        frozen = _arm(drift="thermal-harsh", calibration=None)
        recovered = _arm(drift="thermal-harsh", calibration="default")
        return baseline, frozen, recovered

    baseline, frozen, recovered = run_once(benchmark, experiment)

    # arm 1: no drift — every segment is "baseline", all exact
    assert baseline.recovery_ratio == 1.0
    assert baseline.baseline_exact == 1.0
    assert baseline.recalibrations == 0

    # arm 2: drift with a frozen model — the plateau segments (where the
    # calibrated arm recovers) stay collapsed
    assert frozen.recalibrations == 0
    frozen_plateau = [s for s in frozen.segments if s.thermal_factor < 0.6]
    assert frozen_plateau, "drift never reached its plateau"
    frozen_exact = sum(s.exact for s in frozen_plateau) / len(frozen_plateau)
    assert frozen_exact <= DRIFTED_CEILING, (
        f"frozen-model arm survived the drift (exact {frozen_exact:.2f}) — "
        "the recovery claim is vacuous at this drift strength"
    )

    # arm 3: the lifecycle — degrade, re-fit, hot-swap, recover
    assert recovered.recalibrations >= 1
    assert recovered.model_swaps == recovered.recalibrations
    assert recovered.baseline_exact == 1.0
    assert recovered.drifted_exact is not None
    assert recovered.recovered_exact is not None
    assert recovered.recovery_ratio is not None
    assert recovered.recovery_ratio >= RECOVERY_FLOOR, (
        f"post-recalibration accuracy {recovered.recovered_exact:.2f} is below "
        f"{RECOVERY_FLOOR:.0%} of the undrifted baseline "
        f"{recovered.baseline_exact:.2f}"
    )

    registry = MetricsRegistry()
    registry.gauge("lifecycle.baseline_exact").set(baseline.baseline_exact)
    registry.gauge("lifecycle.frozen_drifted_exact").set(frozen_exact)
    registry.gauge("lifecycle.drifted_exact").set(recovered.drifted_exact)
    registry.gauge("lifecycle.recovered_exact").set(recovered.recovered_exact)
    registry.gauge("lifecycle.recovery_ratio").set(recovered.recovery_ratio)
    registry.gauge("lifecycle.recalibrations").set(recovered.recalibrations)
    registry.gauge("lifecycle.min_thermal_factor").set(
        recovered.drift["min_thermal_factor"]
    )
    write_bench_manifest(
        "lifecycle",
        registry,
        segments=SEGMENTS,
        seed=SEED,
        recovery_floor=RECOVERY_FLOOR,
        credential=recovered.credential,
    )

    print("\ndrift-recovery (exact-credential accuracy per arm):")
    print(f"  baseline (no drift)        : {baseline.baseline_exact:.2f}")
    print(f"  thermal-harsh, frozen model: {frozen_exact:.2f}")
    print(
        f"  thermal-harsh, calibrated  : drifted {recovered.drifted_exact:.2f} "
        f"-> recovered {recovered.recovered_exact:.2f} "
        f"({recovered.recalibrations} re-fits, "
        f"{recovered.model_swaps} hot swaps)"
    )
    print(f"  recovery ratio             : {recovered.recovery_ratio:.2f}")
