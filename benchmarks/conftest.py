"""Benchmark harness configuration.

Each module regenerates one table or figure from the paper's evaluation
(see DESIGN.md's per-experiment index).  Benches print the same rows or
series the paper reports and assert only the *shape* — who wins, by
roughly what factor, where crossovers fall — since the substrate is a
simulator, not the authors' testbed.

Batch sizes are scaled down from the paper's (e.g. 30 random credentials
per length instead of 300) to keep a full harness run in minutes; every
module takes a ``--thorough``-style scale-up via the REPRO_BENCH_SCALE
environment variable.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.android.apps import CHASE
from repro.android.os_config import default_config

#: Multiplier on batch sizes (REPRO_BENCH_SCALE=10 approximates the paper).
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1"))


def scaled(n: int) -> int:
    return max(2, int(n * SCALE))


@pytest.fixture(scope="session")
def config():
    return default_config()


@pytest.fixture(scope="session")
def chase():
    return CHASE


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def write_bench_manifest(name: str, registry, **meta):
    """Write a bench's run manifest to ``BENCH_<name>.json``.

    The output directory is ``REPRO_BENCH_OUT`` when set, otherwise this
    ``benchmarks/`` directory (the files are gitignored).  Benches pass
    their headline numbers as registry gauges so the manifest doubles as
    a machine-readable result record.
    """
    out_dir = Path(os.environ.get("REPRO_BENCH_OUT", Path(__file__).parent))
    path = out_dir / f"BENCH_{name}.json"
    registry.manifest(bench=name, scale=SCALE, **meta).write(path)
    print(f"\nwrote bench manifest: {path}")
    return path
