"""Fig 20: inference accuracy on six popular on-screen keyboards.

Different keyboard UIs (key geometry, popup styling, animation behaviour)
retain high accuracy with <5 % variation in the paper.
"""

import numpy as np

import zlib

from conftest import run_once, scaled
from repro.analysis.experiments import format_accuracy_table, run_credential_batch
from repro.android.keyboard import KEYBOARDS
from repro.android.os_config import default_config

ORDER = ["swift", "gboard", "sogou", "pinyin", "go", "grammarly"]


def test_fig20_accuracy_across_keyboards(benchmark, chase):
    n = scaled(12)

    def sweep():
        rows = {}
        for name in ORDER:
            config = default_config(keyboard=KEYBOARDS[name])
            batch = run_credential_batch(config, chase, n_texts=n, seed=2000 + zlib.crc32(str(name).encode()) % 89)
            rows[name] = (batch.text_accuracy, batch.key_accuracy)
        return rows

    rows = run_once(benchmark, sweep)
    print("\n" + format_accuracy_table(rows, "Fig 20 — accuracy per keyboard (paper: <5% spread)"))

    text_accs = [text for text, _ in rows.values()]
    key_accs = [key for _, key in rows.values()]
    for name, (text_acc, key_acc) in rows.items():
        assert text_acc > 0.55, name
        assert key_acc > 0.94, name

    # the attack adapts to every keyboard: bounded spread across UIs
    assert max(text_accs) - min(text_accs) < 0.35
    assert max(key_accs) - min(key_accs) < 0.05
    print(f"  spread: text={max(text_accs) - min(text_accs):.3f}, key={max(key_accs) - min(key_accs):.3f}")
