"""Fig 27: user behavior events during the practical-use experiments.

Five volunteers' 3-minute sessions mix credential typing, backspaces,
notification-bar views and app switches.  We regenerate the event traces
and print them in the figure's timeline style.
"""

import numpy as np

from conftest import run_once
from repro.android.events import (
    AppSwitchAway,
    AppSwitchBack,
    BackspacePress,
    KeyPress,
    ViewNotificationShade,
)
from repro.workloads.behavior import practical_session
from repro.workloads.typing_model import TypingModel

GLYPHS = {
    KeyPress: "o",
    BackspacePress: "x",
    ViewNotificationShade: "+",
    AppSwitchAway: ">",
    AppSwitchBack: "<",
}


def test_fig27_session_event_traces(benchmark):
    def build():
        sessions = []
        for v in range(5):
            rng = np.random.default_rng(2700 + v)
            sessions.append(
                practical_session(rng, TypingModel(rng), volunteer_index=v)
            )
        return sessions

    sessions = run_once(benchmark, build)

    print("\nFig 27 — behavior event traces (o=key x=backspace +=shade ></=switch):")
    for i, session in enumerate(sessions, start=1):
        marks = []
        for event in sorted(session.events, key=lambda e: e.t):
            glyph = GLYPHS.get(type(event))
            if glyph and event.t < 60:
                marks.append(glyph)
        print(f"  volunteer {i}: {''.join(marks)}")

    # every session types a credential
    for session in sessions:
        assert len(session.credential) >= 8

    # the population exhibits all behavior kinds (figure's legend)
    assert any(s.corrections > 0 for s in sessions)
    assert any(s.switches > 0 for s in sessions)
    assert any(s.shade_views > 0 for s in sessions)

    # sessions are heterogeneous, like the figure's five rows
    signatures = {
        (s.switches, s.corrections, s.shade_views, len(s.credential)) for s in sessions
    }
    assert len(signatures) >= 4
