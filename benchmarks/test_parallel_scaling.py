"""Parallel scaling: sharded session batches and the vectorized classifier.

Two measurements back the ``repro.parallel`` tentpole:

1. **classify_batch speedup** — one (256, 11) GEMM against every
   centroid versus 256 single-row ``classify_vector`` calls.  This is
   pure compute, so the >=5x assertion holds even on a one-core
   container.
2. **Sharded throughput** — a 100-session batch through
   ``run_sessions`` serial versus ``workers=2`` and ``workers=4``
   process pools.  Speedup needs real cores: the >=2x-at-4-workers
   assertion only fires when ``os.cpu_count() >= 4``; on smaller
   machines the numbers are still recorded (sharding overhead, not
   speedup) so the manifest stays honest about the hardware.

Headline numbers land in ``BENCH_parallel.json``.
"""

import os
import time

import numpy as np
import pytest

from conftest import run_once, scaled, write_bench_manifest
from repro.analysis.experiments import cached_model
from repro.api import AttackConfig, run_sessions
from repro.core import features
from repro.core.model_store import ModelStore
from repro.core.pipeline import simulate_credential_entry
from repro.obs import MetricsRegistry

pytestmark = pytest.mark.bench

CREDENTIALS = ["pw1x5", "abc42", "zq9!k", "m3lon"]

BATCH = 256
CORES = os.cpu_count() or 1


def test_classify_batch_speedup(benchmark, config, chase):
    model = cached_model(config, chase)
    rng = np.random.default_rng(42)
    picks = rng.integers(0, len(model.centroids), size=BATCH)
    rows = model.centroids[picks] + rng.normal(
        0, 1.0, size=(BATCH, features.DIMENSIONS)
    )

    def looped():
        return [model.classify_vector(row) for row in rows]

    def batched():
        return model.classify_batch(rows)

    # warm both paths, then time best-of-5
    looped(), batched()
    t_loop = min(_timed(looped) for _ in range(5))
    t_batch = min(_timed(batched) for _ in range(5))
    run_once(benchmark, batched)

    speedup = t_loop / t_batch
    print(f"\nclassify_batch vs looped classify_vector, batch={BATCH}:")
    print(f"  looped : {1e3 * t_loop:7.2f} ms  ({BATCH / t_loop:,.0f} rows/s)")
    print(f"  batched: {1e3 * t_batch:7.2f} ms  ({BATCH / t_batch:,.0f} rows/s)")
    print(f"  speedup: {speedup:.1f}x")
    assert speedup >= 5.0, f"batch classify only {speedup:.1f}x over looped"

    labels_l = [c.label for c in looped()]
    labels_b = [c.label for c in batched()]
    assert labels_l == labels_b

    registry = MetricsRegistry()
    registry.gauge("classify.batch_size").set(BATCH)
    registry.gauge("classify.looped_ms").set(1e3 * t_loop)
    registry.gauge("classify.batched_ms").set(1e3 * t_batch)
    registry.gauge("classify.speedup").set(speedup)
    test_classify_batch_speedup.registry = registry


def _timed(fn):
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def test_sharded_session_throughput(benchmark, config, chase):
    sessions = scaled(100)
    cfg = AttackConfig(recognize_device=False)
    store = ModelStore()
    store.add(cached_model(config, chase))
    traces = [
        simulate_credential_entry(
            config, chase, CREDENTIALS[i % len(CREDENTIALS)], seed=9000 + i
        )
        for i in range(sessions)
    ]

    def run(workers):
        started = time.perf_counter()
        batch = run_sessions(
            store, traces, seed=9500, config=cfg, workers=workers
        )
        return batch, time.perf_counter() - started

    (serial_batch, t_serial) = run_once(benchmark, lambda: run(1))
    timings = {1: t_serial}
    for workers in (2, 4):
        sharded_batch, elapsed = run(workers)
        timings[workers] = elapsed
        assert [r.text for r in sharded_batch] == [r.text for r in serial_batch]

    print(f"\nSharded throughput — {sessions} sessions on {CORES} core(s):")
    for workers, elapsed in sorted(timings.items()):
        print(
            f"  workers={workers}: {elapsed:6.2f}s "
            f"({sessions / elapsed:6.1f} sessions/s, "
            f"{t_serial / elapsed:4.2f}x vs serial)"
        )
    if CORES >= 4:
        speedup4 = t_serial / timings[4]
        assert speedup4 >= 2.0, f"only {speedup4:.2f}x at 4 workers on {CORES} cores"
    else:
        print(f"  ({CORES} core(s): speedup assertion skipped, numbers recorded)")

    registry = getattr(test_classify_batch_speedup, "registry", MetricsRegistry())
    registry.gauge("parallel.sessions").set(sessions)
    registry.gauge("parallel.cores").set(CORES)
    for workers, elapsed in timings.items():
        registry.gauge(f"parallel.wall_s.workers_{workers}").set(elapsed)
        registry.gauge(f"parallel.speedup.workers_{workers}").set(t_serial / elapsed)
    write_bench_manifest("parallel", registry, sessions=sessions, cores=CORES)
