"""Section 9 at fleet scale: the threat × mitigation matrix.

Drives the attack across ``scenarios × mitigation policies`` via
:func:`repro.api.run_defense_matrix` and emits the full matrix as
``BENCH_defense.json`` (per-cell ``defense.<scenario>.<policy>.*``
gauges) — the artifact ``docs/defenses.md`` and EXPERIMENTS.md
reproduce their tables from.  One cell additionally runs through
:func:`repro.api.run_fleet`, proving the collector-merged manifest
carries the same mitigation tallies.

Shape assertions, per the acceptance bar:

* allow-all reproduces the undefended baseline exactly;
* RBAC drives exact-credential recovery to zero;
* the obfuscation sweep point sits between the two;
* popup disabling breaks key inference on popup keyboards.
"""

from conftest import run_once, scaled, write_bench_manifest
from repro.api import (
    AttackConfig,
    MetricsRegistry,
    format_defense_matrix,
    mitigation,
    run_defense_matrix,
    run_fleet,
    train,
)

SCENARIOS = ("pinpad", "gboard-chase")
POLICIES = ("allow-all", "rbac", "rate-limit-30hz", "obfuscate-strong", "popup-disable")


def test_sec9_defense_matrix(benchmark):
    registry = MetricsRegistry()
    sessions = scaled(2)

    def run():
        return run_defense_matrix(
            list(SCENARIOS),
            list(POLICIES) + [None],
            sessions=sessions,
            seed=7,
            metrics=registry,
        )

    cells = run_once(benchmark, run)
    print("\nSection 9 — threat × mitigation matrix:")
    print(format_defense_matrix(cells))

    by_key = {(c.scenario, c.mitigation): c for c in cells}
    for scn in SCENARIOS:
        baseline = by_key[(scn, "none")]
        allow = by_key[(scn, "allow-all")]
        rbac = by_key[(scn, "rbac")]
        sweep = by_key[(scn, "rate-limit-30hz")]
        assert allow.exact == baseline.exact, f"{scn}: allow-all must be the baseline"
        assert allow.keys_correct == baseline.keys_correct
        assert rbac.exact == 0, f"{scn}: RBAC must zero exact recovery"
        assert rbac.denials > 0
        assert sweep.key_accuracy <= baseline.key_accuracy
    # popup disabling must break key inference where popups exist
    popup = by_key[("gboard-chase", "popup-disable")]
    baseline = by_key[("gboard-chase", "none")]
    assert popup.key_accuracy < baseline.key_accuracy

    write_bench_manifest(
        "defense",
        registry,
        scenarios=list(SCENARIOS),
        policies=list(POLICIES) + ["none"],
        sessions=sessions,
    )


def test_sec9_fleet_carries_mitigation_tallies(benchmark):
    # one matrix cell at fleet scale: the collector-merged manifest must
    # carry the policy's enforcement counters end to end
    cfg = AttackConfig(
        scenario="pinpad", mitigation="rbac", recognize_device=False, fault_plan=None
    )
    store = train(config=cfg)
    registry = MetricsRegistry()

    def run():
        return run_fleet(
            store,
            credential="19283746",
            devices=2,
            sessions_per_device=1,
            seed=11,
            config=cfg,
            metrics=registry,
        )

    report = run_once(benchmark, run)
    assert report.lost == 0
    assert report.exact == 0, "RBAC must hold at fleet scale"
    counters = registry.manifest().counters
    assert counters.get("mitigation.denials", 0) > 0
    assert counters.get("sampler.counters_denied", 0) > 0
    print(
        f"\nSection 9 — fleet under RBAC: {report.ingested} results ingested, "
        f"exact {report.exact}/{report.sessions_total}, "
        f"{counters['mitigation.denials']} policy denials in the merged manifest"
    )


def test_sec9_composed_stack_dominates_components(benchmark):
    # defense-in-depth (popup + quantize + rate-limit) must do at least
    # as well as its weakest component on the same sessions
    def run():
        return run_defense_matrix(
            ["gboard-chase"],
            ["defense-in-depth", "rate-limit-30hz", "popup-disable", None],
            sessions=scaled(2),
            seed=13,
        )

    cells = run_once(benchmark, run)
    by_name = {c.mitigation: c for c in cells}
    stack = by_name["defense-in-depth"]
    assert stack.key_accuracy <= by_name["rate-limit-30hz"].key_accuracy
    assert stack.key_accuracy <= by_name["popup-disable"].key_accuracy
    assert stack.exact <= by_name["none"].exact
    print(
        f"\nSection 9 — composed stack: key accuracy "
        f"{stack.key_accuracy:.2f} vs none {by_name['none'].key_accuracy:.2f}"
    )
