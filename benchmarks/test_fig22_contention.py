"""Fig 22: impact of concurrent CPU and GPU workloads.

The paper finds negligible accuracy reduction below ~50 % CPU / ~25 % GPU
utilization, degrading toward ~60 % when loads reach 75 %+, because the
monitoring service loses timely counter reads (CPU) or the victim frames
stretch behind the background renderer (GPU).

The same credential set is replayed at every load level so the curves
isolate the load effect.  See EXPERIMENTS.md for where our GPU-load curve
diverges from the paper's (our background contaminates every read window,
which the engine's ambient-deflation extension only partly removes).
"""

import numpy as np

from conftest import run_once, scaled
from repro.analysis.experiments import run_credential_batch
from repro.kgsl.sampler import SystemLoad
from repro.workloads.credentials import credential_batch


def _texts(n):
    return credential_batch(np.random.default_rng(22), n)


def test_fig22a_cpu_load(benchmark, config, chase):
    texts = _texts(scaled(18))

    def sweep():
        rows = {}
        for cpu in (0.0, 0.25, 0.5, 0.75, 1.0):
            rows[cpu] = run_credential_batch(
                config,
                chase,
                load=SystemLoad(cpu_utilization=cpu),
                seed=2200,
                texts=texts,
            )
        return rows

    rows = run_once(benchmark, sweep)
    print("\nFig 22(a) — accuracy under CPU load (paper: mild <50%, ~60% at 75%+):")
    for cpu, batch in rows.items():
        print(f"  cpu={cpu:4.0%}: text={batch.text_accuracy:.3f} key={batch.key_accuracy:.3f}")

    assert rows[0.25].text_accuracy >= rows[0.0].text_accuracy - 0.15, (
        "light CPU load must cost little"
    )
    assert rows[1.0].key_accuracy < rows[0.0].key_accuracy
    assert rows[1.0].text_accuracy <= rows[0.25].text_accuracy
    assert rows[1.0].key_accuracy >= 0.85, "the attack degrades, not collapses"


def test_fig22b_gpu_load(benchmark, config, chase):
    texts = _texts(scaled(14))

    def sweep():
        rows = {}
        for gpu in (0.0, 0.25, 0.5, 0.75):
            rows[gpu] = run_credential_batch(
                config,
                chase,
                gpu_utilization=gpu,
                seed=2250,
                texts=texts,
            )
        return rows

    rows = run_once(benchmark, sweep)
    print("\nFig 22(b) — accuracy under GPU load (paper: mild <25%, ~60% at 75%):")
    for gpu, batch in rows.items():
        print(f"  gpu={gpu:4.0%}: text={batch.text_accuracy:.3f} key={batch.key_accuracy:.3f}")

    # any background GPU rendering hurts; the engine's ambient-deflation
    # keeps per-key accuracy high but whole-credential accuracy drops
    # harder than in the paper (see EXPERIMENTS.md)
    assert rows[0.25].text_accuracy < rows[0.0].text_accuracy
    for gpu in (0.25, 0.5, 0.75):
        assert rows[gpu].key_accuracy >= 0.7, (
            f"per-key accuracy must survive gpu={gpu} via ambient deflation"
        )
    assert rows[0.0].key_accuracy > 0.95
