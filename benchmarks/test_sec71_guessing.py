"""Section 7.1's guessing claim, made concrete.

"Only 1 key press is incorrectly inferred for most text inputs ... such
single errors in inference could be addressed with a small number of
guesses."  The candidate generator enumerates credentials in order of
classification-distance penalty; this bench measures recovery within
k = 1 / 10 / 100 guesses.
"""

import numpy as np

from conftest import run_once, scaled
from repro.analysis.experiments import cached_model, single_model_attack
from repro.core.guessing import CandidateGenerator
from repro.core.pipeline import simulate_credential_entry
from repro.workloads.credentials import credential_batch


def test_sec71_recovery_within_k_guesses(benchmark, config, chase):
    n = scaled(25)

    def run():
        attack = single_model_attack(config, chase)
        generator = CandidateGenerator(cached_model(config, chase))
        rng = np.random.default_rng(71)
        within = {1: 0, 10: 0, 100: 0}
        total = 0
        for i, text in enumerate(credential_batch(rng, n)):
            trace = simulate_credential_entry(config, chase, text, seed=7100 + i)
            result = attack.run_on_trace(trace, seed=7200 + i)
            rank = generator.rank_of(result.online, text, max_candidates=100)
            total += 1
            for k in within:
                if rank is not None and rank <= k:
                    within[k] += 1
        return within, total

    within, total = run_once(benchmark, run)
    rates = {k: v / total for k, v in within.items()}
    print(
        "\nSection 7.1 — credential recovery within k guesses: "
        + ", ".join(f"k={k}: {rate:.1%}" for k, rate in rates.items())
    )
    assert rates[1] >= 0.6, "rank-1 is the Fig 17a text accuracy"
    assert rates[10] >= rates[1], "guessing can only help"
    assert rates[10] - rates[1] >= 0.0
    assert rates[100] >= rates[10]
    # the paper's point: a handful of guesses recovers most near-misses
    assert rates[10] > 0.75


def test_sec71_guess_latency(benchmark, config, chase):
    """Enumerating 100 candidates costs microseconds per guess."""
    attack = single_model_attack(config, chase)
    generator = CandidateGenerator(cached_model(config, chase))
    trace = simulate_credential_entry(config, chase, "guessmepls12", seed=71)
    result = attack.run_on_trace(trace, seed=72)

    guesses = benchmark(lambda: generator.guesses(result.online, max_candidates=100))
    assert len(guesses) >= 1
    assert benchmark.stats.stats.mean < 0.5
