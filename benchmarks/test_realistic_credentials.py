"""Realism check: structured passwords leak like uniform ones.

The paper evaluates uniform random texts; real passwords follow
composition patterns (Word+digits+symbol).  The side channel operates per
key press, so structure should not change its accuracy — this bench
verifies that, and also covers the service pipeline end to end
(launch watch -> recognition -> inference).
"""

import numpy as np

from conftest import run_once, scaled
from repro.analysis.experiments import run_credential_batch, single_model_attack
from repro.analysis.metrics import AccuracyReport
from repro.android.device import VictimDevice
from repro.android.events import KeyPress
from repro.core.service import MonitoringService
from repro.workloads.credentials import credential_batch
from repro.workloads.passwords import pattern_password_batch


def test_structured_passwords_leak_equally(benchmark, config, chase):
    n = scaled(16)

    def run():
        rng = np.random.default_rng(44)
        uniform = run_credential_batch(
            config, chase, seed=4400, texts=credential_batch(rng, n)
        )
        structured = run_credential_batch(
            config, chase, seed=4400, texts=pattern_password_batch(rng, n)
        )
        return uniform, structured

    uniform, structured = run_once(benchmark, run)
    print(
        f"\nrealistic credentials:\n"
        f"  uniform random : text={uniform.text_accuracy:.3f} key={uniform.key_accuracy:.3f}\n"
        f"  word+digits    : text={structured.text_accuracy:.3f} key={structured.key_accuracy:.3f}"
    )
    assert abs(structured.key_accuracy - uniform.key_accuracy) < 0.05, (
        "the channel is per-key; composition patterns must not matter"
    )
    assert structured.text_accuracy > 0.5


def test_full_service_pipeline(benchmark, config, chase):
    """Fig 4 end to end: idle watch -> launch detection -> attack."""
    from repro.core.model_store import ModelStore
    from repro.analysis.experiments import cached_model

    store = ModelStore()
    store.add(cached_model(config, chase))
    service = MonitoringService(store)

    def run():
        recovered = 0
        duty_savings = []
        latencies = []
        rng = np.random.default_rng(45)
        texts = pattern_password_batch(rng, scaled(6), min_len=8, max_len=12)
        for i, text in enumerate(texts):
            device = VictimDevice(config, chase, rng=np.random.default_rng(4500 + i))
            # the victim idles elsewhere for 8 s before opening the app —
            # the window where the cheap 4 Hz watch saves power
            events = [
                KeyPress(t=9.5 + 0.45 * j, char=c) for j, c in enumerate(text)
            ]
            trace = device.compile(
                events, end_time_s=events[-1].t + 1.5, launch_at_s=8.0
            )
            report = service.run(trace, seed=4600 + i)
            if report.launch_detected_at is not None:
                latencies.append(report.launch_detected_at - 8.0)
            recovered += report.inferred_text == text
            duty_savings.append(report.reads_saved_vs_always_on)
        return recovered, len(texts), latencies, duty_savings

    recovered, total, latencies, duty_savings = run_once(benchmark, run)
    print(
        f"\nservice pipeline: {recovered}/{total} credentials recovered verbatim; "
        f"launch latency median {np.median(latencies):.2f}s; "
        f"idle-watch read savings {np.mean(duty_savings):.1%}"
    )
    assert len(latencies) == total, "every launch must be detected"
    assert recovered >= total // 2
    assert np.median(latencies) < 2.0, "detection within the login screen's lifetime"
    assert np.mean(duty_savings) > 0.2
