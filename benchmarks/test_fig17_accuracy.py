"""Fig 17: accuracy of inferring user text inputs (the headline result).

(a) text-input accuracy per credential length 8-16 — paper: always >75 %,
    average 81.3 %;
(b) incorrectly inferred key presses per input — paper: mostly 1 error,
    per-key accuracy 98.3 %;
(c) accuracy per character group — paper: symbols worst (minimum
    overdraw), letters/digits near-perfect.
"""

import numpy as np

from conftest import run_once, scaled
from repro.analysis.experiments import run_credential_batch


def _sweep(config, chase, n_per_length):
    results = {}
    for length in range(8, 17):
        results[length] = run_credential_batch(
            config, chase, n_texts=n_per_length, length=length, seed=1700 + length
        )
    return results


def test_fig17_accuracy_by_length(benchmark, config, chase):
    n = scaled(20)
    results = run_once(benchmark, lambda: _sweep(config, chase, n))

    print("\nFig 17(a/b) — accuracy vs credential length (paper avg: 81.3% / 98.3%):")
    print(f"{'len':>4s} {'text acc':>9s} {'key acc':>9s} {'errors/input':>13s}")
    text_accs, key_accs, all_errors = [], [], []
    for length, batch in results.items():
        report = batch.report
        text_accs.append(report.text_accuracy)
        key_accs.append(report.key_accuracy)
        all_errors.extend(report.errors_per_trace)
        print(
            f"{length:4d} {report.text_accuracy:9.3f} {report.key_accuracy:9.3f} "
            f"{report.mean_errors_per_trace:13.2f}"
        )
    avg_text = float(np.mean(text_accs))
    avg_key = float(np.mean(key_accs))
    print(f" avg {avg_text:9.3f} {avg_key:9.3f}")

    # paper shape: text accuracy stays high across all lengths, including 16
    assert avg_text > 0.65, "average text accuracy must stay in the paper's band"
    assert min(text_accs) > 0.5, "no length may collapse"
    assert avg_key > 0.95, "per-key accuracy must be near the paper's 98.3%"

    # Fig 17(b): errors concentrate at 0-1 per input
    errors = np.array(all_errors)
    assert np.mean(errors <= 1) > 0.8, "most inputs have at most one wrong key press"
    assert np.mean(errors) < 1.0


def test_fig17_group_accuracy(benchmark, config, chase):
    batch = run_once(
        benchmark,
        lambda: run_credential_batch(config, chase, n_texts=scaled(60), seed=1790),
    )
    groups = batch.report.group_accuracy()
    print("\nFig 17(c) — accuracy per character group:")
    for group in ("lower", "upper", "number", "symbol"):
        print(f"  {group:8s} {groups.get(group, 0.0):.3f}")
    # paper: every group >= ~0.95, symbols the weakest
    for group, acc in groups.items():
        assert acc > 0.88, group
    assert groups["symbol"] <= min(groups["lower"], groups["number"]) + 0.02, (
        "symbols (minimum overdraw) must be the weakest group"
    )
