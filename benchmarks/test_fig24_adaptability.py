"""Fig 24: adaptability across GPUs, resolutions, phones and OS versions.

Because a classification model is preloaded per (device model,
configuration), the attack retains its accuracy across (a) Adreno
540/640/650/660, (b) FHD+/QHD+ panels, (c) different phones sharing a
GPU, and (d) Android versions 8.1-11.
"""

import zlib

from conftest import run_once, scaled
from repro.analysis.experiments import format_accuracy_table, run_credential_batch
from repro.android.display import Resolution
from repro.android.os_config import DeviceConfig, default_config, phone


def _batch(config, chase, n, seed):
    return run_credential_batch(config, chase, n_texts=n, seed=seed)


def _assert_band(rows):
    for label, (text_acc, key_acc) in rows.items():
        assert text_acc >= 0.45, f"{label}: text accuracy out of band"
        assert key_acc > 0.94, f"{label}: key accuracy out of band"


def test_fig24a_gpu_models(benchmark, chase):
    phones = {
        "Adreno 540": "lg_v30",
        "Adreno 640": "oneplus7pro",
        "Adreno 650": "oneplus8pro",
        "Adreno 660": "oneplus9",
    }
    n = scaled(12)

    def sweep():
        rows = {}
        for label, name in phones.items():
            config = DeviceConfig(phone=phone(name))
            batch = _batch(config, chase, n, 2400 + zlib.crc32(str(label).encode()) % 71)
            rows[label] = (batch.text_accuracy, batch.key_accuracy)
        return rows

    rows = run_once(benchmark, sweep)
    print("\n" + format_accuracy_table(rows, "Fig 24(a) — accuracy per Adreno GPU"))
    _assert_band(rows)


def test_fig24b_resolutions(benchmark, chase):
    n = scaled(12)

    def sweep():
        rows = {}
        for resolution in (Resolution.FHD_PLUS, Resolution.QHD_PLUS):
            config = default_config(resolution=resolution)
            batch = _batch(config, chase, n, 2410 + resolution.width)
            rows[resolution.label] = (batch.text_accuracy, batch.key_accuracy)
        return rows

    rows = run_once(benchmark, sweep)
    print("\n" + format_accuracy_table(rows, "Fig 24(b) — accuracy per resolution"))
    _assert_band(rows)
    accs = [t for t, _ in rows.values()]
    assert abs(accs[0] - accs[1]) < 0.3


def test_fig24c_same_gpu_different_phones(benchmark, chase):
    pairs = [("lg_v30", "pixel2"), ("oneplus9", "galaxy_s21")]
    n = scaled(12)

    def sweep():
        rows = {}
        for a, b in pairs:
            for name in (a, b):
                config = DeviceConfig(phone=phone(name))
                batch = _batch(config, chase, n, 2420 + zlib.crc32(str(name).encode()) % 61)
                rows[name] = (batch.text_accuracy, batch.key_accuracy)
        return rows

    rows = run_once(benchmark, sweep)
    print("\n" + format_accuracy_table(rows, "Fig 24(c) — same GPU, different phones"))
    _assert_band(rows)
    # the vendor/skin has negligible impact when the GPU is the same
    for a, b in pairs:
        assert abs(rows[a][1] - rows[b][1]) < 0.05, (a, b)


def test_fig24d_android_versions(benchmark, chase):
    versions = ("8.1", "9", "10", "11")
    n = scaled(12)

    def sweep():
        rows = {}
        for version in versions:
            config = default_config().with_android(version)
            batch = _batch(config, chase, n, 2430 + int(float(version) * 10))
            rows[f"Android {version}"] = (batch.text_accuracy, batch.key_accuracy)
        return rows

    rows = run_once(benchmark, sweep)
    print("\n" + format_accuracy_table(rows, "Fig 24(d) — accuracy per Android version"))
    _assert_band(rows)
    key_accs = [k for _, k in rows.values()]
    assert max(key_accs) - min(key_accs) < 0.05
