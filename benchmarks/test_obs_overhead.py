"""Observability overhead: an enabled registry must cost under 5 %.

The obs layer (``repro.obs``) promises two things about cost.  With the
default :data:`~repro.obs.NULL_REGISTRY` the instrumented paths run the
same instruction stream as uninstrumented code (parity is asserted in
``tests/test_obs.py``); this bench pins the *enabled* side: a live
:class:`MetricsRegistry` — counters flushed at stage boundaries, the
per-inference latency histogram, spans around the run and extraction —
must stay within 5 % of the uninstrumented attack.

Emits ``BENCH_obs.json``: the final observed run's own manifest plus
the headline overhead numbers as gauges.
"""

import statistics
import time

import pytest

from conftest import run_once, write_bench_manifest
from repro.core.model_store import ModelStore
from repro.core.pipeline import EavesdropAttack, simulate_credential_entry, train_model
from repro.obs import MetricsRegistry

pytestmark = pytest.mark.bench

CREDENTIAL = "hunter2pw"
ROUNDS = 7


@pytest.fixture(scope="module")
def store(config, chase):
    store = ModelStore()
    store.add(train_model(config, chase, seed=7))
    return store


@pytest.fixture(scope="module")
def trace(config, chase):
    return simulate_credential_entry(config, chase, CREDENTIAL, seed=1)


def median_runtime(store, trace, registry_factory):
    times, registry = [], None
    for _ in range(ROUNDS):
        registry = registry_factory()
        attack = EavesdropAttack(
            store, recognize_device=False, fault_plan=None, metrics=registry
        )
        started = time.perf_counter()
        attack.run_on_trace(trace, seed=101)
        times.append(time.perf_counter() - started)
    return statistics.median(times), registry


def test_enabled_registry_adds_under_5_percent(benchmark, store, trace):
    baseline, _ = median_runtime(store, trace, lambda: None)
    observed, registry = run_once(
        benchmark, lambda: median_runtime(store, trace, MetricsRegistry)
    )
    overhead = observed / baseline - 1.0
    print(
        f"\nobs registry on: baseline {baseline * 1e3:.1f} ms, "
        f"observed {observed * 1e3:.1f} ms ({overhead:+.1%})"
    )
    print(f"  counters collected : {len(registry.snapshot()['counters'])}")
    print(f"  latency samples    : {registry.histogram('engine.inference_latency_s').count}")

    registry.gauge("bench.baseline_s").set(baseline)
    registry.gauge("bench.observed_s").set(observed)
    registry.gauge("bench.overhead_frac").set(overhead)
    write_bench_manifest("obs", registry, rounds=ROUNDS)

    assert overhead < 0.05, "an enabled metrics registry must stay within 5% of baseline"
