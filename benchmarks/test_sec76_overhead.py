"""Section 7.6: model size and attack-application footprint.

The paper reports ~3.59 KB per classification model and a worst-case APK
payload of ~13.4 MB for 3,000 preloaded models (100 phones x 15 keyboards
x 2 resolutions), comfortably below Play Store's 100 MB limit.
"""

from conftest import run_once
from repro.analysis.experiments import cached_model
from repro.android.keyboard import KEYBOARDS
from repro.android.os_config import default_config
from repro.core.model_store import ModelStore


def test_sec76_model_sizes(benchmark, config, chase):
    model = run_once(benchmark, lambda: cached_model(config, chase))
    size_kb = model.size_bytes() / 1024.0
    print(f"\nSection 7.6 — one model: {size_kb:.2f} KB (paper: ~3.59 KB)")
    # same order of magnitude: kilobytes, not megabytes
    assert 1.0 < size_kb < 64.0

    projected_mb = 3000 * model.size_bytes() / 1e6
    print(f"  3,000 preloaded models: {projected_mb:.1f} MB (paper: 13.4 MB; store limit 100 MB)")
    assert projected_mb < 100.0, "the full model payload must fit a Play Store app"


def test_sec76_store_round_trip_size(benchmark, chase, tmp_path):
    def build():
        store = ModelStore()
        for name in ("gboard", "swift", "sogou"):
            config = default_config(keyboard=KEYBOARDS[name])
            store.add(cached_model(config, chase))
        return store

    store = run_once(benchmark, build)
    path = tmp_path / "models.json"
    store.save(path)
    on_disk_kb = path.stat().st_size / 1024.0
    print(f"\nmodel store with {len(store)} configurations: {on_disk_kb:.1f} KB on disk")
    assert on_disk_kb / len(store) < 64.0
    loaded = ModelStore.load(path)
    assert loaded.keys() == store.keys()
