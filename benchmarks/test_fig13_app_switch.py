"""Fig 13: PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ changes across an app switch.

The figure shows fierce PC bursts at the beginning and end of the switch,
with inter-change gaps (<50 ms) far below human typing intervals, and the
target-app typing in between the bursts dwarfed by them.
"""

import numpy as np

from conftest import run_once
from repro.android.device import VictimDevice
from repro.android.events import AppSwitchAway, AppSwitchBack, KeyPress
from repro.core.appswitch import AppSwitchDetector
from repro.core.classifier import Classification
from repro.kgsl.device_file import DeviceClock, open_kgsl
from repro.kgsl.sampler import PerfCounterSampler, nonzero_deltas


def _session(config, chase):
    events = [
        KeyPress(t=0.8, char="u"),
        KeyPress(t=1.4, char="s"),
        KeyPress(t=2.0, char="r"),
        AppSwitchAway(t=3.0),
        AppSwitchBack(t=7.0),
        KeyPress(t=8.2, char="p"),
        KeyPress(t=8.8, char="w"),
    ]
    device = VictimDevice(config, chase, rng=np.random.default_rng(13))
    trace = device.compile(events, end_time_s=10.0)
    kgsl = open_kgsl(trace.timeline, clock=DeviceClock())
    sampler = PerfCounterSampler(kgsl, rng=np.random.default_rng(131))
    return trace, nonzero_deltas(sampler.sample_range(0.0, 10.0))


def test_fig13_burst_structure(benchmark, config, chase):
    trace, deltas = run_once(benchmark, lambda: _session(config, chase))

    typing = [d for d in deltas if 0.5 < d.t < 2.8]  # skip the initial full render
    burst_away = [d for d in deltas if 3.0 <= d.t < 3.36]
    burst_back = [d for d in deltas if 7.0 <= d.t < 7.36]

    typing_peak = max(d.total for d in typing)
    away_peak = max(d.total for d in burst_away)
    back_peak = max(d.total for d in burst_back)
    print(
        f"\nFig 13 — peak PC change: typing={typing_peak}, "
        f"switch-away burst={away_peak}, switch-back burst={back_peak}"
    )
    assert away_peak > 3 * typing_peak
    assert back_peak > 3 * typing_peak

    gaps = [b.t - a.t for a, b in zip(burst_away, burst_away[1:])]
    assert gaps and max(gaps) < 0.05, "burst inter-change gaps must be <50 ms"


def test_fig13_detector_tracks_switch(benchmark, config, chase):
    trace, deltas = run_once(benchmark, lambda: _session(config, chase))
    detector = AppSwitchDetector(
        big_threshold=5 * max(d.total for d in deltas if 0.5 < d.t < 2.8)
    )
    away_states = []
    for delta in deltas:
        obs = detector.observe(delta, Classification(label=None, distance=9.9))
        away_states.append((delta.t, obs.in_target))
    detector.flush(10.0)
    # in-target before, away in the middle, back at the end
    assert all(state for t, state in away_states if t < 2.9)
    assert any(not state for t, state in away_states if 4.0 < t < 6.5)
    assert detector.in_target
    assert detector.bursts_seen == 2
