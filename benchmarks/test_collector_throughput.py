"""Collector ingestion throughput under the mild fault profile.

The fleet-scale claim of ``docs/collector.md``: one asyncio collector
sustains **≥ 1000 sessions/s** of ingestion from concurrent devices with
**zero lost results** while the mild fault profile drops connections and
slows reads — retries absorb every injected failure.

The devices here are synthetic senders (pre-built payloads, no attack
compute), because this bench measures the *network* layer: framing,
ack round trips, dedup, the bounded queue, and aggregation.  End-to-end
fleet runs with real attack compute are ``tests/test_collector.py`` and
``repro fleet``.

Writes ``BENCH_collector.json`` (ingest rate, retries, duplicate
frames) as the machine-readable record; CI uploads it as an artifact.
"""

import threading
import time

import pytest

from repro.collector import (
    CollectorClient,
    CollectorHandle,
    RetryPolicy,
    SessionResultPayload,
)
from repro.faults import FaultPlan
from conftest import scaled, write_bench_manifest

pytestmark = pytest.mark.bench

#: Ingestion floor the collector must sustain locally (sessions/s).
MIN_INGEST_RATE = 1000.0

DEVICES = 4
SESSIONS_PER_DEVICE = scaled(400)

#: The mild profile's fault knobs, reseeded per device below — the same
#: plan the CI fault matrix runs, driving the network injector here.
MILD = FaultPlan.from_profile("mild", seed=11)


def _stream_device(endpoint, d, errors):
    device_id = f"device-{d:04d}"
    client = CollectorClient(
        endpoint,
        device_id,
        fault_plan=MILD,
        retry=RetryPolicy(max_attempts=10, base_delay_s=0.002, max_delay_s=0.05),
        seed_offset=d,
    )
    try:
        with client:
            client.send_results(
                SessionResultPayload(device_id, i, "pw123456", 8, exact=True)
                for i in range(SESSIONS_PER_DEVICE)
            )
    except Exception as exc:  # pragma: no cover - surfaced via `errors`
        errors.append(exc)
    return client.stats


def test_collector_sustains_fleet_ingestion():
    sent = DEVICES * SESSIONS_PER_DEVICE
    errors = []
    stats = [None] * DEVICES
    with CollectorHandle(transport="tcp", queue_size=256) as handle:
        endpoint = handle.endpoint

        def run(d):
            stats[d] = _stream_device(endpoint, d, errors)

        threads = [
            threading.Thread(target=run, args=(d,), name=f"bench-device-{d}")
            for d in range(DEVICES)
        ]
        started = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - started
    assert not errors, f"device senders failed: {errors}"

    registry = handle.server.registry
    ingested = registry.counter("collector.sessions_ingested").value
    dupes = registry.counter("collector.dupes_dropped").value
    retries = sum(s.retries for s in stats)
    drops = sum(s.injected_drops for s in stats)
    rate = ingested / elapsed

    print(f"\ncollector ingestion: {DEVICES} devices x {SESSIONS_PER_DEVICE} sessions")
    print(
        f"  ingested {ingested}/{sent} in {elapsed:.2f}s -> {rate:.0f} sessions/s "
        f"(floor {MIN_INGEST_RATE:.0f})"
    )
    print(f"  injected drops {drops}, retries {retries}, duplicate frames {dupes}")

    # zero lost results: every injected drop was absorbed by a retry
    assert ingested == sent
    assert drops > 0, "mild profile should have injected connection drops"
    assert rate >= MIN_INGEST_RATE

    bench = type(registry)()
    bench.gauge("collector.bench_ingest_rate").set(rate)
    bench.gauge("collector.bench_wall_s").set(elapsed)
    bench.counter("collector.bench_sessions").inc(sent)
    bench.counter("collector.bench_retries").inc(retries)
    bench.counter("collector.bench_injected_drops").inc(drops)
    bench.counter("collector.bench_duplicate_frames").inc(dupes)
    bench.merge_snapshot(registry.snapshot())
    write_bench_manifest(
        "collector", bench, devices=DEVICES, sessions=sent, profile="mild"
    )
