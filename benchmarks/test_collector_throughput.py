"""Collector ingestion throughput: fault tolerance and codec comparison.

Two measurements back the collector tier:

1. **Fleet ingestion under faults** — the fleet-scale claim of
   ``docs/collector.md``: one asyncio collector sustains **>= 1000
   sessions/s** with **zero lost results** while the mild fault profile
   drops connections and slows reads — retries absorb every injected
   failure.

2. **Codec comparison** — the same sender fleet with no faults, once
   per wire codec.  Every payload carries the full 11-counter delta
   vector the attack loop ships, so this measures exactly what the
   binary codec was built for: one ``struct`` pack/unpack per result
   instead of per-field JSON.  The binary floor is **>= 5000
   sessions/s**.

The devices here are synthetic senders (pre-built payloads, no attack
compute), because this bench measures the *network* layer: framing,
ack round trips, dedup, the bounded queue, and aggregation.  End-to-end
fleet runs with real attack compute are ``tests/test_collector.py`` and
``repro fleet``.

Writes ``BENCH_collector.json`` (ingest rates per codec, retries,
duplicate frames) as the machine-readable record; CI uploads it as an
artifact.
"""

import threading
import time

import pytest

from repro.collector import (
    CollectorClient,
    CollectorConfig,
    CollectorHandle,
    RetryPolicy,
    SessionResultPayload,
)
from repro.faults import FaultPlan
from repro.obs import MetricsRegistry
from conftest import scaled, write_bench_manifest

pytestmark = pytest.mark.bench

#: Ingestion floor the collector must sustain locally (sessions/s).
MIN_INGEST_RATE = 1000.0
#: Floor for the binary codec with delta-carrying payloads (sessions/s).
MIN_BINARY_INGEST_RATE = 5000.0

DEVICES = 4
SESSIONS_PER_DEVICE = scaled(400)

BENCH_RETRY = RetryPolicy(max_attempts=10, base_delay_s=0.002, max_delay_s=0.05)

#: The mild profile's fault knobs, reseeded per device below — the same
#: plan the CI fault matrix runs, driving the network injector here.
MILD = FaultPlan.from_profile("mild", seed=11)

#: A realistic per-session counter delta vector (11 fixed u64s).
DELTAS = (1208, 604, 912, 48123, 310, 42, 288, 1200, 96, 40288, 11008)


def _payload(device_id, i):
    return SessionResultPayload(
        device_id, i, "pw123456", 8, exact=True, deltas=DELTAS, mask=0x7FF
    )


def _stream_device(endpoint, d, errors, codec, fault_plan):
    device_id = f"device-{d:04d}"
    client = CollectorClient(
        endpoint,
        device_id,
        fault_plan=fault_plan,
        config=CollectorConfig(codec=codec, retry=BENCH_RETRY),
        seed_offset=d,
    )
    try:
        with client:
            client.send_results(
                _payload(device_id, i) for i in range(SESSIONS_PER_DEVICE)
            )
    except Exception as exc:  # pragma: no cover - surfaced via `errors`
        errors.append(exc)
    return client.stats


def _run_fleet(codec, fault_plan=None):
    """Stream the full sender fleet once; returns (handle registry, stats, wall)."""
    errors = []
    stats = [None] * DEVICES
    with CollectorHandle(CollectorConfig(queue_size=256, codec=codec)) as handle:
        endpoint = handle.endpoint

        def run(d):
            stats[d] = _stream_device(endpoint, d, errors, codec, fault_plan)

        threads = [
            threading.Thread(target=run, args=(d,), name=f"bench-device-{d}")
            for d in range(DEVICES)
        ]
        started = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - started
        snapshot = handle.server.registry
        assert not errors, f"device senders failed: {errors}"
        return snapshot, stats, elapsed


def test_collector_sustains_fleet_ingestion():
    sent = DEVICES * SESSIONS_PER_DEVICE
    registry, stats, elapsed = _run_fleet("auto", fault_plan=MILD)

    ingested = registry.counter("collector.sessions_ingested").value
    dupes = registry.counter("collector.dupes_dropped").value
    retries = sum(s.retries for s in stats)
    drops = sum(s.injected_drops for s in stats)
    rate = ingested / elapsed

    print(f"\ncollector ingestion: {DEVICES} devices x {SESSIONS_PER_DEVICE} sessions")
    print(
        f"  ingested {ingested}/{sent} in {elapsed:.2f}s -> {rate:.0f} sessions/s "
        f"(floor {MIN_INGEST_RATE:.0f})"
    )
    print(f"  injected drops {drops}, retries {retries}, duplicate frames {dupes}")

    # zero lost results: every injected drop was absorbed by a retry
    assert ingested == sent
    assert drops > 0, "mild profile should have injected connection drops"
    assert rate >= MIN_INGEST_RATE

    bench = MetricsRegistry()
    bench.gauge("collector.bench_ingest_rate").set(rate)
    bench.gauge("collector.bench_wall_s").set(elapsed)
    bench.counter("collector.bench_sessions").inc(sent)
    bench.counter("collector.bench_retries").inc(retries)
    bench.counter("collector.bench_injected_drops").inc(drops)
    bench.counter("collector.bench_duplicate_frames").inc(dupes)
    bench.merge_snapshot(registry.snapshot())
    test_collector_sustains_fleet_ingestion.registry = bench
    write_bench_manifest(
        "collector", bench, devices=DEVICES, sessions=sent, profile="mild"
    )


def test_codec_ingest_comparison():
    sent = DEVICES * SESSIONS_PER_DEVICE
    rates = {}
    for codec in ("json", "binary"):
        registry, _, elapsed = _run_fleet(codec)
        ingested = registry.counter("collector.sessions_ingested").value
        negotiated = registry.counter(f"collector.codec.{codec}").value
        assert ingested == sent
        assert negotiated == DEVICES, f"every device should negotiate {codec}"
        rates[codec] = ingested / elapsed

    speedup = rates["binary"] / rates["json"]
    print(f"\ncodec comparison: {DEVICES} devices x {SESSIONS_PER_DEVICE} sessions,")
    print("  full 11-counter delta payloads, no faults")
    for codec, rate in rates.items():
        print(f"  {codec:6s}: {rate:8.0f} sessions/s")
    print(f"  binary/json: {speedup:.2f}x (binary floor {MIN_BINARY_INGEST_RATE:.0f}/s)")
    assert rates["binary"] >= MIN_BINARY_INGEST_RATE

    bench = getattr(
        test_collector_sustains_fleet_ingestion, "registry", MetricsRegistry()
    )
    bench.gauge("collector.bench_json_ingest_rate").set(rates["json"])
    bench.gauge("collector.bench_binary_ingest_rate").set(rates["binary"])
    bench.gauge("collector.bench_codec_speedup").set(speedup)
    write_bench_manifest(
        "collector",
        bench,
        devices=DEVICES,
        sessions=sent,
        profile="mild",
        codecs=["json", "binary"],
    )
