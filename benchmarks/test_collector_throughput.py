"""Collector ingestion throughput: fault tolerance, codecs, and shards.

Three measurements back the collector tier:

1. **Fleet ingestion under faults** — the fleet-scale claim of
   ``docs/collector.md``: one asyncio collector sustains **>= 1000
   sessions/s** with **zero lost results** while the mild fault profile
   drops connections and slows reads — retries absorb every injected
   failure.

2. **Codec comparison** — the same sender fleet with no faults, once
   per wire codec.  Every payload carries the full 11-counter delta
   vector the attack loop ships, so this measures exactly what the
   binary codec was built for: one ``struct`` pack/unpack per result
   instead of per-field JSON.  The binary floor is **>= 5000
   sessions/s**.

3. **Sharded tier ingestion** — 100k simulated devices (multiplexed
   over sender connections) streaming one journaled result each into a
   4-shard :class:`CollectorTier` under the **harsh** fault profile,
   with pipelined batch delivery (``pipeline_depth=32``): senders pack
   bursts into single ``batch`` wire frames, and each shard pays one
   read/journal-flush/ack per burst instead of per result.  Zero loss
   is asserted outright, and the rate floor is **2x** the
   single-collector binary floor — the point of running N collector
   processes behind the batch path.

The devices here are synthetic senders (pre-built payloads, no attack
compute), because this bench measures the *network* layer: framing,
ack round trips, dedup, the bounded queue, and aggregation.  End-to-end
fleet runs with real attack compute are ``tests/test_collector.py`` and
``repro fleet``.

Writes ``BENCH_collector.json`` (ingest rates per codec, retries,
duplicate frames) as the machine-readable record; CI uploads it as an
artifact.
"""

import dataclasses
import threading
import time

import pytest

from repro.collector import (
    CollectorClient,
    CollectorConfig,
    CollectorHandle,
    RetryPolicy,
    SessionResultPayload,
)
from repro.faults import FaultPlan
from repro.obs import MetricsRegistry
from conftest import scaled, write_bench_manifest

pytestmark = pytest.mark.bench

#: Ingestion floor the collector must sustain locally (sessions/s).
MIN_INGEST_RATE = 1000.0
#: Floor for the binary codec with delta-carrying payloads (sessions/s).
MIN_BINARY_INGEST_RATE = 5000.0

DEVICES = 4
SESSIONS_PER_DEVICE = scaled(400)

BENCH_RETRY = RetryPolicy(max_attempts=10, base_delay_s=0.002, max_delay_s=0.05)

#: The mild profile's fault knobs, reseeded per device below — the same
#: plan the CI fault matrix runs, driving the network injector here.
MILD = FaultPlan.from_profile("mild", seed=11)

#: A realistic per-session counter delta vector (11 fixed u64s).
DELTAS = (1208, 604, 912, 48123, 310, 42, 288, 1200, 96, 40288, 11008)


def _payload(device_id, i):
    return SessionResultPayload(
        device_id, i, "pw123456", 8, exact=True, deltas=DELTAS, mask=0x7FF
    )


def _stream_device(endpoint, d, errors, codec, fault_plan):
    device_id = f"device-{d:04d}"
    client = CollectorClient(
        endpoint,
        device_id,
        fault_plan=fault_plan,
        config=CollectorConfig(codec=codec, retry=BENCH_RETRY),
        seed_offset=d,
    )
    try:
        with client:
            client.send_results(
                _payload(device_id, i) for i in range(SESSIONS_PER_DEVICE)
            )
    except Exception as exc:  # pragma: no cover - surfaced via `errors`
        errors.append(exc)
    return client.stats


def _run_fleet(codec, fault_plan=None):
    """Stream the full sender fleet once; returns (handle registry, stats, wall)."""
    errors = []
    stats = [None] * DEVICES
    with CollectorHandle(CollectorConfig(queue_size=256, codec=codec)) as handle:
        endpoint = handle.endpoint

        def run(d):
            stats[d] = _stream_device(endpoint, d, errors, codec, fault_plan)

        threads = [
            threading.Thread(target=run, args=(d,), name=f"bench-device-{d}")
            for d in range(DEVICES)
        ]
        started = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - started
        snapshot = handle.server.registry
        assert not errors, f"device senders failed: {errors}"
        return snapshot, stats, elapsed


def test_collector_sustains_fleet_ingestion():
    sent = DEVICES * SESSIONS_PER_DEVICE
    registry, stats, elapsed = _run_fleet("auto", fault_plan=MILD)

    ingested = registry.counter("collector.sessions_ingested").value
    dupes = registry.counter("collector.dupes_dropped").value
    retries = sum(s.retries for s in stats)
    drops = sum(s.injected_drops for s in stats)
    rate = ingested / elapsed

    print(f"\ncollector ingestion: {DEVICES} devices x {SESSIONS_PER_DEVICE} sessions")
    print(
        f"  ingested {ingested}/{sent} in {elapsed:.2f}s -> {rate:.0f} sessions/s "
        f"(floor {MIN_INGEST_RATE:.0f})"
    )
    print(f"  injected drops {drops}, retries {retries}, duplicate frames {dupes}")

    # zero lost results: every injected drop was absorbed by a retry
    assert ingested == sent
    assert drops > 0, "mild profile should have injected connection drops"
    assert rate >= MIN_INGEST_RATE

    bench = MetricsRegistry()
    bench.gauge("collector.bench_ingest_rate").set(rate)
    bench.gauge("collector.bench_wall_s").set(elapsed)
    bench.counter("collector.bench_sessions").inc(sent)
    bench.counter("collector.bench_retries").inc(retries)
    bench.counter("collector.bench_injected_drops").inc(drops)
    bench.counter("collector.bench_duplicate_frames").inc(dupes)
    bench.merge_snapshot(registry.snapshot())
    test_collector_sustains_fleet_ingestion.registry = bench
    write_bench_manifest(
        "collector", bench, devices=DEVICES, sessions=sent, profile="mild"
    )


def test_codec_ingest_comparison():
    sent = DEVICES * SESSIONS_PER_DEVICE
    rates = {}
    for codec in ("json", "binary"):
        registry, _, elapsed = _run_fleet(codec)
        ingested = registry.counter("collector.sessions_ingested").value
        negotiated = registry.counter(f"collector.codec.{codec}").value
        assert ingested == sent
        assert negotiated == DEVICES, f"every device should negotiate {codec}"
        rates[codec] = ingested / elapsed

    speedup = rates["binary"] / rates["json"]
    print(f"\ncodec comparison: {DEVICES} devices x {SESSIONS_PER_DEVICE} sessions,")
    print("  full 11-counter delta payloads, no faults")
    for codec, rate in rates.items():
        print(f"  {codec:6s}: {rate:8.0f} sessions/s")
    print(f"  binary/json: {speedup:.2f}x (binary floor {MIN_BINARY_INGEST_RATE:.0f}/s)")
    assert rates["binary"] >= MIN_BINARY_INGEST_RATE

    bench = getattr(
        test_collector_sustains_fleet_ingestion, "registry", MetricsRegistry()
    )
    bench.gauge("collector.bench_json_ingest_rate").set(rates["json"])
    bench.gauge("collector.bench_binary_ingest_rate").set(rates["binary"])
    bench.gauge("collector.bench_codec_speedup").set(speedup)
    write_bench_manifest(
        "collector",
        bench,
        devices=DEVICES,
        sessions=sent,
        profile="mild",
        codecs=["json", "binary"],
    )


# ---------------------------------------------------------------------------
# sharded tier


#: Floor for the 4-shard tier: 2x the single-collector binary floor —
#: the whole justification for running N collector processes.
MIN_SHARDED_INGEST_RATE = 2.0 * MIN_BINARY_INGEST_RATE

SHARDS = 4
#: Logical devices streaming one session each; multiplexed over
#: ``SENDER_THREADS`` connections because 100k OS threads is the wrong
#: experiment — the collector dedups on the *payload's* device id.
SHARDED_DEVICES = scaled(100_000)
SENDER_THREADS = 64
#: In-flight results per sender connection: bursts ride single batch
#: frames, so the per-result ack round trip amortizes 32-fold.
PIPELINE_DEPTH = 32

#: Harsh-profile retry budget: P(drop)=0.25 per attempt means 14
#: attempts leave ~1e-9 residual failure per frame — zero loss at 100k.
SHARDED_RETRY = RetryPolicy(max_attempts=14, base_delay_s=0.002, max_delay_s=0.05)

#: The harsh profile with sub-millisecond jitter: the bench keeps the
#: profile's drop/jitter *probabilities* (0.25 each) but shrinks the
#: jitter scale so the measurement is dominated by the tier, not by
#: sleeping senders.
HARSH = dataclasses.replace(FaultPlan.from_profile("harsh", seed=13), jitter_s=2e-4)


def _stream_chunk(endpoint, sender_id, device_ids, config, errors, stats, slot):
    """One sender connection carrying many logical devices' results."""
    client = CollectorClient(
        endpoint,
        sender_id,
        fault_plan=HARSH,
        config=config,
        seed_offset=slot,
    )
    try:
        with client:
            client.send_results(
                _payload(device_id, 0) for device_id in device_ids
            )
    except Exception as exc:  # pragma: no cover - surfaced via `errors`
        errors.append(exc)
    stats[slot] = client.stats


def test_sharded_tier_sustains_100k_devices(tmp_path):
    from repro.collector import CollectorTier

    config = CollectorConfig(
        codec="binary",
        queue_size=1024,
        retry=SHARDED_RETRY,
        shards=SHARDS,
        journal_dir=str(tmp_path),
        pipeline_depth=PIPELINE_DEPTH,
    )
    device_ids = [f"device-{d:06d}" for d in range(SHARDED_DEVICES)]
    tier = CollectorTier(config, seed=17)
    by_shard = tier.router.partition(device_ids)
    per_shard_threads = max(1, SENDER_THREADS // SHARDS)

    chunks = []  # (endpoint, sender_id, device slice)
    threads = []
    errors = []
    with tier:
        for shard, shard_devices in by_shard.items():
            endpoint = tier.endpoints[shard]
            for t in range(per_shard_threads):
                chunk = shard_devices[t::per_shard_threads]
                if chunk:
                    chunks.append((endpoint, f"sender-{shard:02d}-{t:02d}", chunk))
        stats = [None] * len(chunks)
        threads = [
            threading.Thread(
                target=_stream_chunk,
                args=(endpoint, sender_id, chunk, config, errors, stats, slot),
                name=sender_id,
            )
            for slot, (endpoint, sender_id, chunk) in enumerate(chunks)
        ]
        started = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - started
    assert not errors, f"senders failed: {errors}"

    manifest = tier.merged_manifest(bench="sharded")
    ingested = manifest.counters["collector.sessions_ingested"]
    dupes = manifest.counters.get("collector.dupes_dropped", 0)
    retries = sum(s.retries for s in stats)
    drops = sum(s.injected_drops for s in stats)
    rate = ingested / elapsed

    print(
        f"\nsharded ingestion: {SHARDED_DEVICES} devices over {SHARDS} shards, "
        f"{len(threads)} sender connections, harsh faults"
    )
    print(
        f"  ingested {ingested}/{SHARDED_DEVICES} in {elapsed:.2f}s -> "
        f"{rate:.0f} sessions/s (floor {MIN_SHARDED_INGEST_RATE:.0f})"
    )
    print(f"  injected drops {drops}, retries {retries}, duplicate frames {dupes}")

    # the durable-tier contract: harsh faults, zero loss, journaled
    assert ingested == SHARDED_DEVICES
    assert drops > 0, "harsh profile should have injected connection drops"
    assert rate >= MIN_SHARDED_INGEST_RATE

    bench = getattr(
        test_collector_sustains_fleet_ingestion, "registry", MetricsRegistry()
    )
    bench.gauge("collector.bench_sharded_ingest_rate").set(rate)
    bench.gauge("collector.bench_sharded_wall_s").set(elapsed)
    bench.counter("collector.bench_sharded_sessions").inc(SHARDED_DEVICES)
    bench.counter("collector.bench_sharded_retries").inc(retries)
    bench.counter("collector.bench_sharded_injected_drops").inc(drops)
    test_collector_sustains_fleet_ingestion.registry = bench
    write_bench_manifest(
        "collector",
        bench,
        devices=DEVICES,
        sessions=DEVICES * SESSIONS_PER_DEVICE,
        profile="mild",
        codecs=["json", "binary"],
        sharded_devices=SHARDED_DEVICES,
        shards=SHARDS,
        sharded_profile="harsh",
        pipeline_depth=PIPELINE_DEPTH,
    )
