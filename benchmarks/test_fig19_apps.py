"""Fig 19: inference accuracy over different target applications.

Six native apps (banking / investment / credit) and three login webpages
in Chrome; the paper reports >80 % text accuracy on all of them.
"""

import zlib

from conftest import run_once, scaled
from repro.analysis.experiments import format_accuracy_table, run_credential_batch
from repro.android.apps import TARGET_APPS


APPS = [
    "chase",
    "amex",
    "fidelity",
    "schwab",
    "myfico",
    "experian",
    "chase.com",
    "schwab.com",
    "experian.com",
]


def test_fig19_accuracy_across_apps(benchmark, config):
    n = scaled(12)

    def sweep():
        rows = {}
        for name in APPS:
            batch = run_credential_batch(
                config, TARGET_APPS[name], n_texts=n, seed=1900 + zlib.crc32(str(name).encode()) % 97
            )
            rows[name] = (batch.text_accuracy, batch.key_accuracy)
        return rows

    rows = run_once(benchmark, sweep)
    print("\n" + format_accuracy_table(rows, "Fig 19 — accuracy per target app (paper: >0.8 text)"))

    for name, (text_acc, key_acc) in rows.items():
        assert text_acc > 0.55, f"{name} text accuracy out of band"
        assert key_acc > 0.94, f"{name} key accuracy out of band"

    # native and web targets are all attackable; no category collapses
    native = [rows[n][0] for n in APPS[:6]]
    web = [rows[n][0] for n in APPS[6:]]
    assert min(native) > 0.55 and min(web) > 0.55
