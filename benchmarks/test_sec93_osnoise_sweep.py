"""Section 9.3's open question: how much OS-injected noise is enough?

"Obfuscation could also be more effectively applied from the OS, by
randomly executing small GPU workloads in background.  The major
challenge, however, is how to decide the appropriate amount of these
workloads, as excessive GPU workloads impair the system's performance."

This bench sweeps the injector's rate/intensity and reports the defence
tradeoff: attack accuracy vs the GPU time the noise consumes.
"""

import numpy as np

from conftest import run_once, scaled
from repro.analysis.experiments import single_model_attack
from repro.analysis.metrics import AccuracyReport
from repro.core.pipeline import simulate_credential_entry
from repro.gpu.timeline import merge_timelines
from repro.mitigations.obfuscation import OsNoiseInjector
from repro.workloads.credentials import credential_batch

SETTINGS = [
    # (rate_hz, intensity)
    (0.0, 0.0),
    (5.0, 0.10),
    (20.0, 0.15),
    (60.0, 0.25),
]


def _run(config, chase, n):
    attack = single_model_attack(config, chase)
    texts = credential_batch(np.random.default_rng(93), n)
    rows = {}
    for rate, intensity in SETTINGS:
        report = AccuracyReport()
        cost = 0.0
        for i, text in enumerate(texts):
            trace = simulate_credential_entry(config, chase, text, seed=9300 + i)
            if rate > 0:
                injector = OsNoiseInjector(
                    config.gpu,
                    config.display,
                    rate_hz=rate,
                    intensity=intensity,
                    rng=np.random.default_rng(9400 + i),
                )
                noise = injector.timeline(0.0, trace.end_time_s)
                cost += noise.busy_fraction(0.0, trace.end_time_s)
                trace.timeline = merge_timelines([trace.timeline, noise])
            result = attack.run_on_trace(trace, seed=9500 + i)
            report.add(text, result.text)
        rows[(rate, intensity)] = (report, cost / max(1, len(texts)))
    return rows


def test_sec93_os_noise_tradeoff(benchmark, config, chase):
    rows = run_once(benchmark, lambda: _run(config, chase, scaled(10)))

    print("\nSection 9.3 — OS noise injection tradeoff:")
    print(f"{'rate':>6s} {'intensity':>9s} {'key acc':>8s} {'text acc':>9s} {'gpu cost':>9s}")
    ordered = []
    for (rate, intensity), (report, cost) in rows.items():
        print(
            f"{rate:6.0f} {intensity:9.2f} {report.key_accuracy:8.3f} "
            f"{report.text_accuracy:9.3f} {cost:8.1%}"
        )
        ordered.append((rate, report, cost))

    baseline = rows[(0.0, 0.0)][0]
    strongest = rows[SETTINGS[-1]][0]
    # noise must hurt the attack...
    assert strongest.key_accuracy < baseline.key_accuracy
    assert strongest.text_accuracy < baseline.text_accuracy
    # ...at a measurable but bounded GPU cost (the paper's tension)
    costs = [cost for _, _, cost in ordered]
    assert costs == sorted(costs), "stronger settings must cost more GPU time"
    assert rows[SETTINGS[-1]][1] < 0.5, "the defence must not consume half the GPU"
