"""Session-runtime throughput: many concurrent victims, one process.

The tentpole claim for the streaming runtime is that one process can
multiplex sampling + inference for a whole fleet of eavesdropping
sessions on a single virtual timeline.  This bench runs >=100 concurrent
sessions through ``run_sessions`` — each with its own KGSL file, sampler
RNG and online engine — and reports aggregate sessions/sec plus the
per-stage decision counters from the shared ``RuntimeTrace``.

Chunked sampling (``ATTACK_SOURCE_CHUNK`` reads per pull, vectorized
nonzero-delta extraction) is what keeps this tractable; the bench also
measures the vectorized extractor against the scalar one directly.
"""

import time

import numpy as np
import pytest

from conftest import run_once, scaled, write_bench_manifest
from repro.analysis.experiments import cached_model
from repro.core.model_store import ModelStore
from repro.core.pipeline import (
    EavesdropAttack,
    run_sessions,
    simulate_credential_entry,
)
from repro.kgsl.device_file import DeviceClock, open_kgsl
from repro.kgsl.sampler import (
    PerfCounterSampler,
    nonzero_deltas,
    nonzero_deltas_vectorized,
)
from repro.obs import MetricsRegistry
from repro.runtime import RuntimeTrace

pytestmark = pytest.mark.bench

#: Short credentials keep per-session traces ~3 s of virtual time so the
#: fleet-sized run stays inside the benchmark budget.
CREDENTIALS = ["pw1x5", "abc42", "zq9!k", "m3lon"]


def test_runtime_concurrent_sessions(benchmark, config, chase):
    sessions = scaled(100)
    store = ModelStore()
    store.add(cached_model(config, chase))
    registry = MetricsRegistry()
    attack = EavesdropAttack(store, recognize_device=False, metrics=registry)

    traces = [
        simulate_credential_entry(
            config, chase, CREDENTIALS[i % len(CREDENTIALS)], seed=9000 + i
        )
        for i in range(sessions)
    ]

    runtime_trace = RuntimeTrace(capacity=1024)

    def run():
        started = time.perf_counter()
        results = run_sessions(attack, traces, seed=9500, runtime_trace=runtime_trace)
        return results, time.perf_counter() - started

    results, elapsed = run_once(benchmark, run)

    exact = sum(
        1
        for i, r in enumerate(results)
        if r.text == CREDENTIALS[i % len(CREDENTIALS)]
    )
    throughput = sessions / elapsed
    print(f"\nRuntime throughput — {sessions} concurrent sessions, one process:")
    print(f"  wall time      : {elapsed:.2f}s")
    print(f"  throughput     : {throughput:.1f} sessions/s")
    print(f"  exact matches  : {exact}/{sessions} ({100 * exact / sessions:.1f}%)")
    print("  engine decisions (shared trace):")
    for (stage, kind), count in sorted(runtime_trace.counters.items()):
        print(f"    {stage:>12s}.{kind:<22s}: {count}")

    registry.gauge("bench.exact_rate").set(exact / sessions)
    write_bench_manifest("runtime", registry, sessions=sessions)

    assert len(results) == sessions
    assert all(r is not None for r in results)
    # every session ran to completion on the shared runtime
    assert runtime_trace.count(kind="session_end") == sessions
    # the channel still works at fleet scale
    assert exact / sessions > 0.5


def test_vectorized_delta_extraction(benchmark, config, chase):
    """Vectorized nonzero-delta extraction matches the scalar path and wins."""
    trace = simulate_credential_entry(config, chase, "Tr0ub4dor&3", seed=77)
    kgsl = open_kgsl(trace.timeline, clock=DeviceClock())
    sampler = PerfCounterSampler(kgsl, rng=np.random.default_rng(78))
    samples = sampler.sample_range(0.0, trace.end_time_s)

    def scalar():
        return nonzero_deltas(samples)

    def vectorized():
        return nonzero_deltas_vectorized(samples)

    assert vectorized() == scalar()

    repeats = scaled(20)
    t0 = time.perf_counter()
    for _ in range(repeats):
        scalar()
    scalar_s = (time.perf_counter() - t0) / repeats

    vec_s = benchmark.pedantic(vectorized, rounds=max(2, repeats), iterations=1)

    t0 = time.perf_counter()
    for _ in range(repeats):
        vectorized()
    vec_s = (time.perf_counter() - t0) / repeats

    print(f"\nNonzero-delta extraction over {len(samples)} samples:")
    print(f"  scalar     : {scalar_s * 1e3:.2f} ms")
    print(f"  vectorized : {vec_s * 1e3:.2f} ms  ({scalar_s / vec_s:.1f}x)")
    assert vec_s < scalar_s
