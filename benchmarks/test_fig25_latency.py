"""Fig 25: computing time needed for eavesdropping.

The paper's C++ service infers >95 % of key presses within 0.1 ms.  We
time every classifier invocation during a real attack run (histogram) and
additionally benchmark the bare nearest-centroid inference with
pytest-benchmark's statistics.
"""

import numpy as np

from conftest import scaled
from repro.analysis.experiments import cached_model, run_credential_batch
from repro.core import features


def test_fig25_inference_time_histogram(benchmark, config, chase):
    def run():
        batch = run_credential_batch(config, chase, n_texts=scaled(10), seed=2500)
        return np.array(batch.inference_times_s)

    times = benchmark.pedantic(run, rounds=1, iterations=1)

    edges = [0, 25e-6, 50e-6, 100e-6, 150e-6, np.inf]
    hist, _ = np.histogram(times, bins=edges)
    print("\nFig 25 — inference time histogram:")
    labels = ["<25us", "25-50us", "50-100us", "100-150us", ">150us"]
    for label, count in zip(labels, hist):
        print(f"  {label:>10s}: {count:5d} ({100 * count / len(times):.1f}%)")
    print(f"  median={np.median(times) * 1e6:.1f}us  p95={np.quantile(times, 0.95) * 1e6:.1f}us")

    # the paper's bound, evaluated at the median and a loose tail (Python
    # scheduler noise makes the extreme tail unstable)
    assert np.median(times) < 1e-4
    assert np.quantile(times, 0.9) < 1e-3


def test_fig25_bare_classification_benchmark(benchmark, config, chase):
    """Microbenchmark of one nearest-centroid inference."""
    model = cached_model(config, chase)
    vec = model.centroid("key:w") * 1.001

    result = benchmark(model.classify_vector, vec)
    assert result.label == "key:w"
    # pytest-benchmark reports the distribution; assert the mean is sane
    assert benchmark.stats.stats.mean < 1e-3
