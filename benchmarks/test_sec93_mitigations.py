"""Sections 9.1-9.3: mitigation effectiveness.

* RBAC / SELinux ioctl whitelisting (Section 9.2) blocks the attack at
  the device file — the only complete fix the paper endorses.
* Local-only counter visibility (the finer-grained RBAC) blinds the
  attack while preserving the API for profilers.
* Disabling key-press popups (Section 9.1) prevents key inference but
  still leaks the input length via the Section 5.3 field signal.
* Login-screen animation (PNC, Section 9.3) floods the counters and
  drops accuracy to ~30 % in the paper.
* Driver-level value obfuscation perturbs returned counter values.
"""

from conftest import run_once, scaled
from repro.analysis.experiments import run_credential_batch, single_model_attack
from repro.android.apps import PNC
from repro.core.pipeline import simulate_credential_entry
from repro.mitigations.access_control import LocalOnlyPolicy, RbacPolicy
from repro.mitigations.obfuscation import CounterObfuscationPolicy
from repro.mitigations.popup_disable import config_with_popups_disabled


def test_sec92_rbac_blocks_attack(benchmark, config, chase):
    attack = single_model_attack(config, chase)
    trace = simulate_credential_entry(config, chase, "protected123", seed=93)

    def attempt():
        policy = RbacPolicy()
        result = attack.run_on_trace(trace, seed=930, access_policy=policy)
        return policy, result

    policy, result = run_once(benchmark, attempt)
    # EACCES permanently masks every counter: the attack survives but
    # recovers nothing (blind sampling, degraded result).
    assert result.text == "", "SELinux whitelisting must deny the counter ioctls"
    assert result.degraded
    assert policy.denials >= 1
    print(f"\nSection 9.2 — RBAC: attack blinded with EACCES after {policy.denials} denial(s)")


def test_sec92_local_only_blinds_attack(benchmark, config, chase):
    attack = single_model_attack(config, chase)
    trace = simulate_credential_entry(config, chase, "protected456", seed=94)
    result = run_once(
        benchmark, lambda: attack.run_on_trace(trace, seed=940, access_policy=LocalOnlyPolicy())
    )
    print(f"\nSection 9.2 — local-only counters: inferred {result.text!r}")
    assert result.text == ""


def test_sec91_popup_disable_stops_keys_but_leaks_length(benchmark, chase, config):
    disabled = config_with_popups_disabled(config)
    text = "lengthleak12"

    def run():
        attack = single_model_attack(disabled, chase)
        trace = simulate_credential_entry(disabled, chase, text, seed=91)
        return attack.run_on_trace(trace, seed=910)

    result = run_once(benchmark, run)
    from repro.analysis.metrics import align

    correct = align(text, result.text).correct
    inferred_len = len(result.text) + result.online.stats.unattributed_growth
    print(
        f"\nSection 9.1 — popups disabled: inferred {result.text!r} "
        f"({correct}/{len(text)} correct), length estimate {inferred_len}"
    )
    # direct eavesdropping is broken...
    assert correct / len(text) < 0.75, "popup disabling must break most key inference"
    # ...but the input length still leaks through the field signal
    assert abs(inferred_len - len(text)) <= 2


def test_sec93_pnc_animation_obfuscation(benchmark, config, chase):
    n = scaled(12)

    def run():
        clean = run_credential_batch(config, chase, n_texts=n, seed=9300)
        animated = run_credential_batch(config, PNC, n_texts=n, seed=9300)
        return clean, animated

    clean, animated = run_once(benchmark, run)
    print(
        f"\nSection 9.3 — login animation (paper: 30.2%):\n"
        f"  clean app:    text={clean.text_accuracy:.3f} key={clean.key_accuracy:.3f}\n"
        f"  PNC animated: text={animated.text_accuracy:.3f} key={animated.key_accuracy:.3f}"
    )
    assert animated.text_accuracy < clean.text_accuracy
    assert animated.text_accuracy < 0.5, "the animation must hurt substantially"


def test_sec93_value_obfuscation(benchmark, config, chase):
    attack = single_model_attack(config, chase)
    text = "obfuscated99"

    def run():
        trace = simulate_credential_entry(config, chase, text, seed=95)
        clear = attack.run_on_trace(trace, seed=950)
        fuzzed = attack.run_on_trace(
            trace, seed=950, access_policy=CounterObfuscationPolicy(strength=3.0)
        )
        return clear, fuzzed

    clear, fuzzed = run_once(benchmark, run)
    from repro.analysis.metrics import align

    clear_correct = align(text, clear.text).correct
    fuzzed_correct = align(text, fuzzed.text).correct
    print(
        f"\nSection 9.3 — driver value obfuscation: "
        f"clear {clear_correct}/{len(text)}, obfuscated {fuzzed_correct}/{len(text)}"
    )
    assert fuzzed_correct < clear_correct
