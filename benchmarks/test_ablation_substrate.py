"""Substrate sensitivity: do the paper-shape conclusions survive
perturbations of the simulator's free parameters?

A reproduction on a synthetic substrate must show its conclusions are not
knife-edge artifacts of the chosen constants.  This bench sweeps the two
most influential knobs — the hardware counter jitter and the popup
geometry — and checks that the qualitative claims hold across the range.
"""

import numpy as np

from conftest import run_once, scaled
import repro.analysis.experiments as experiments
import repro.android.device as device_mod
from repro.analysis.experiments import run_credential_batch
from repro.workloads.credentials import credential_batch


def _with_jitter_scale(scale_factor, fn):
    base = dict(device_mod.VictimDevice._JITTER_SIGMA)
    device_mod.VictimDevice._JITTER_SIGMA = {
        k: v * scale_factor for k, v in base.items()
    }
    device_mod._RENDER_CACHE.clear()
    experiments._MODEL_CACHE.clear()
    try:
        return fn()
    finally:
        device_mod.VictimDevice._JITTER_SIGMA = base
        device_mod._RENDER_CACHE.clear()
        experiments._MODEL_CACHE.clear()


def test_substrate_jitter_sensitivity(benchmark, config, chase):
    texts = credential_batch(np.random.default_rng(88), scaled(14))

    def sweep():
        rows = {}
        for factor in (0.5, 1.0, 2.0):
            rows[factor] = _with_jitter_scale(
                factor,
                lambda: run_credential_batch(config, chase, seed=8800, texts=texts),
            )
        return rows

    rows = run_once(benchmark, sweep)
    print("\nsubstrate ablation — counter jitter scale:")
    for factor, batch in rows.items():
        print(
            f"  jitter x{factor}: text={batch.text_accuracy:.3f} "
            f"key={batch.key_accuracy:.3f}"
        )

    # the attack works across a 4x jitter range (conclusion not knife-edge)
    for factor, batch in rows.items():
        assert batch.key_accuracy > 0.9, f"jitter x{factor}"
        assert batch.text_accuracy > 0.4, f"jitter x{factor}"
    # more hardware noise can only make inference harder (weak monotone)
    assert rows[2.0].key_accuracy <= rows[0.5].key_accuracy + 0.02


def test_substrate_is_deterministic(benchmark, config, chase):
    """Identical seeds reproduce identical experiment outcomes —
    prerequisite for everything else in the harness."""
    texts = credential_batch(np.random.default_rng(89), scaled(6))

    def run_twice():
        a = run_credential_batch(config, chase, seed=8900, texts=texts)
        b = run_credential_batch(config, chase, seed=8900, texts=texts)
        return a, b

    a, b = run_once(benchmark, run_twice)
    assert a.text_accuracy == b.text_accuracy
    assert a.key_accuracy == b.key_accuracy
    assert a.report.errors_per_trace == b.report.errors_per_trace
