"""Fig 18: inference accuracy over individual key presses.

The paper sweeps all 70+ keyboard characters and shows most keys above
95 % with errors concentrated on the minimum-overdraw symbols (',' "'"
'.' and friends).
"""

import numpy as np

from conftest import run_once, scaled
from repro.analysis.experiments import run_per_key_sweep
from repro.workloads.credentials import character_group


def test_fig18_per_key_accuracy(benchmark, config, chase):
    repeats = scaled(10)
    stats = run_once(benchmark, lambda: run_per_key_sweep(config, chase, repeats=repeats))

    accuracy = {c: correct / total for c, (correct, total) in stats.items() if total}
    print("\nFig 18 — per-key accuracy (worst 12):")
    worst = sorted(accuracy, key=accuracy.get)[:12]
    for char in worst:
        correct, total = stats[char]
        print(f"  {char!r}: {accuracy[char]:.2f} ({correct}/{total})")

    overall = sum(c for c, _ in stats.values()) / sum(t for _, t in stats.values())
    print(f"  overall per-key accuracy: {overall:.3f} (paper: 0.983)")
    assert overall > 0.93

    # most keys are near-perfect
    strong = [c for c, acc in accuracy.items() if acc >= 0.9]
    assert len(strong) >= 0.8 * len(accuracy)

    # errors concentrate on a few keys, and the hardest keys are the
    # faint-glyph symbols (the paper's ',' and '.'; here the near-twin
    # pair '(' and '\'' / '"' plays the same role)
    ranked = sorted(accuracy, key=accuracy.get)
    assert character_group(ranked[0]) == "symbol", ranked[:5]
    worst3 = ranked[:3]
    worst3_errors = sum(stats[c][1] - stats[c][0] for c in worst3)
    total_errors = sum(t - c for c, t in stats.values())
    assert worst3_errors >= 0.25 * max(1, total_errors), (
        "errors must concentrate on the few hardest keys"
    )


def test_fig18_symbol_group_weakest(benchmark, config, chase):
    stats = run_once(
        benchmark, lambda: run_per_key_sweep(config, chase, repeats=scaled(10), seed=2024)
    )
    groups = {}
    for c, (correct, total) in stats.items():
        g = character_group(c)
        prev = groups.get(g, (0, 0))
        groups[g] = (prev[0] + correct, prev[1] + total)
    acc = {g: c / t for g, (c, t) in groups.items() if t}
    print("\ngroup accuracy:", {g: round(a, 3) for g, a in acc.items()})
    assert acc["symbol"] <= min(acc["lower"], acc["number"]) + 0.01, (
        "symbols (minimum overdraw) must be the weakest group"
    )
