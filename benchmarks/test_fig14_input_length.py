"""Fig 14: PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ tracks the input length.

"The PC value strictly increases by 2 with a new input character and
decreases by 2 whenever an input character is deleted by backspace", and
cursor blinks redraw the field at the unchanged length on a 0.5 s cadence.
"""

import numpy as np

from conftest import run_once
from repro.android.device import VictimDevice
from repro.android.events import BackspacePress, KeyPress
from repro.gpu import counters as pc


def _field_series(config, chase):
    events = [
        KeyPress(t=0.8, char="a"),
        KeyPress(t=1.8, char="b"),
        KeyPress(t=2.8, char="c"),
        BackspacePress(t=3.8),
        BackspacePress(t=4.8),
    ]
    device = VictimDevice(config, chase, rng=np.random.default_rng(14))
    trace = device.compile(events, end_time_s=6.5)
    series = []
    for frame in trace.timeline.frames:
        head = frame.label.split(":")[0]
        if head in ("echo", "backspace", "cursor_blink"):
            series.append(
                (
                    frame.start_s,
                    head,
                    int(frame.label.split(":")[1]),
                    frame.stats.increment.get(pc.LRZ_VISIBLE_PRIM_AFTER_LRZ),
                )
            )
    return series


def test_fig14_plus_minus_two_per_character(benchmark, config, chase):
    series = run_once(benchmark, lambda: _field_series(config, chase))
    print("\nFig 14 — field redraw LRZ13 changes:")
    for t, kind, length, lrz13 in series:
        print(f"  t={t:6.3f}s {kind:12s} len={length}  dLRZ13={lrz13}")

    by_kind_len = {}
    for _, kind, length, lrz13 in series:
        by_kind_len.setdefault((kind, length), []).append(lrz13)

    # echo at length n vs echo at n+1: exactly +2 primitives
    echo = {length: vals[0] for (kind, length), vals in by_kind_len.items() if kind == "echo"}
    assert echo[2] - echo[1] == 2
    assert echo[3] - echo[2] == 2

    # backspace redraws step back down by 2
    back = {length: vals[0] for (kind, length), vals in by_kind_len.items() if kind == "backspace"}
    assert echo[3] - back[2] == 2
    assert back[2] - back[1] == 2


def test_fig14_cursor_blink_is_length_neutral(benchmark, config, chase):
    series = run_once(benchmark, lambda: _field_series(config, chase))
    echo = {length: lrz for _, kind, length, lrz in series if kind == "echo"}
    # a blink at length n carries n's primitive count, +-2 for the cursor
    for _, kind, length, lrz13 in series:
        if kind != "cursor_blink" or length not in echo:
            continue
        assert abs(lrz13 - echo[length]) <= 2

    # the blink timer resets on every text change (Android suspends the
    # cursor while typing): each blink fires ~0.5 s after the previous
    # field activity
    times = [(t, kind) for t, kind, _, _ in series]
    for i, (t, kind) in enumerate(times):
        if kind != "cursor_blink" or i == 0:
            continue
        gap = t - times[i - 1][0]
        assert 0.4 < gap < 0.6, (t, kind, gap)
