"""Fault-machinery overhead: disabled injection must be (nearly) free.

The fault subsystem (``repro.faults``) promises that with no plan
installed the sampling fast path is hook-free: ``FaultPlan.injector``
returns ``None`` for a disabled plan, so the sampler and device file
never consult an injector.  This bench pins the cost of having the
machinery *available but off* at under 5 % of a pre-fault-subsystem run,
and reports the cost of the mild profile for context.
"""

import statistics
import time

import pytest

from conftest import run_once
from repro.core.model_store import ModelStore
from repro.core.pipeline import EavesdropAttack, simulate_credential_entry, train_model
from repro.faults import FaultPlan

pytestmark = pytest.mark.bench

CREDENTIAL = "hunter2pw"
ROUNDS = 7


@pytest.fixture(scope="module")
def store(config, chase):
    store = ModelStore()
    store.add(train_model(config, chase, seed=7))
    return store


@pytest.fixture(scope="module")
def trace(config, chase):
    return simulate_credential_entry(config, chase, CREDENTIAL, seed=1)


def median_runtime(store, trace, fault_plan):
    attack = EavesdropAttack(store, recognize_device=False, fault_plan=fault_plan)
    times = []
    for _ in range(ROUNDS):
        started = time.perf_counter()
        attack.run_on_trace(trace, seed=101)
        times.append(time.perf_counter() - started)
    return statistics.median(times)


def test_disabled_faults_add_under_5_percent(benchmark, store, trace):
    baseline = median_runtime(store, trace, fault_plan=None)
    disabled = run_once(
        benchmark, lambda: median_runtime(store, trace, FaultPlan.from_profile("none"))
    )
    overhead = disabled / baseline - 1.0
    print(
        f"\nfault machinery off: baseline {baseline * 1e3:.1f} ms, "
        f"disabled-plan {disabled * 1e3:.1f} ms ({overhead:+.1%})"
    )
    assert overhead < 0.05, "disabled fault injection must stay within 5% of baseline"


def test_mild_profile_overhead_is_bounded(store, trace):
    baseline = median_runtime(store, trace, fault_plan=None)
    mild = median_runtime(store, trace, FaultPlan.from_profile("mild", seed=0))
    print(
        f"\nmild profile: baseline {baseline * 1e3:.1f} ms, "
        f"mild {mild * 1e3:.1f} ms ({mild / baseline - 1.0:+.1%})"
    )
    # retries, re-registration and jitter cost real work, but the
    # resilient path must stay the same order of magnitude
    assert mild < baseline * 3.0
