"""Fig 28: accuracy in practical usage sessions (paper Section 8).

Five volunteers use the victim device for 3 minutes each, typing
credentials amid random app switches, corrections and notification views.
The paper reports 97.1 % average per-character accuracy and 78.0 % average
trace accuracy — slightly below the clean Section 7.1 numbers because of
correction handling.
"""

import numpy as np

from conftest import run_once, scaled
from repro.analysis.experiments import run_practical_sessions


def test_fig28_practical_usage_accuracy(benchmark, config, chase):
    repeats = max(2, scaled(2))

    reports = run_once(
        benchmark,
        lambda: run_practical_sessions(
            config, chase, volunteers=5, repeats=repeats, duration_s=150.0
        ),
    )

    print("\nFig 28 — practical usage (paper: 97.1% char / 78.0% trace):")
    char_accs, trace_accs = [], []
    for name, report in reports.items():
        char_accs.append(report.key_accuracy)
        trace_accs.append(report.text_accuracy)
        print(
            f"  {name}: char={report.key_accuracy:.3f} trace={report.text_accuracy:.3f}"
        )
    mean_char = float(np.mean(char_accs))
    mean_trace = float(np.mean(trace_accs))
    print(f"  average: char={mean_char:.3f} trace={mean_trace:.3f}")

    assert mean_char > 0.90, "per-character accuracy must stay high in practice"
    assert mean_trace >= 0.35, "a large share of credentials must still be recovered"
    assert mean_trace <= 1.0

    # the practical setting costs some accuracy vs clean entry, as the
    # paper observes, but does not break the attack
    assert all(acc > 0.8 for acc in char_accs)
