"""Fig 26: extra battery consumption of the attack over two hours.

The paper measures at most ~4 % extra battery after 2 hours across LG
V30, Oneplus 8 Pro, Pixel 2 and Oneplus 7 Pro.  The analytic power model
combines per-ioctl energy, inference energy, the wakeup/core cost and the
GPU counter-sampling power of each phone's Adreno, against each phone's
battery capacity.
"""

import numpy as np

from conftest import run_once
from repro.android.os_config import phone
from repro.kgsl.sampler import PowerModel

PHONES = ["lg_v30", "oneplus8pro", "pixel2", "oneplus7pro"]


def test_fig26_battery_overhead_curves(benchmark):
    def curves():
        out = {}
        for name in PHONES:
            spec = phone(name)
            model = PowerModel(battery_mwh=spec.battery_mwh)
            series = [
                model.extra_consumption_percent(
                    minutes * 60.0, gpu_sample_power_mw=spec.gpu.sample_power_mw
                )
                for minutes in (30, 60, 90, 120)
            ]
            out[name] = series
        return out

    rows = run_once(benchmark, curves)
    print("\nFig 26 — extra battery % at 30/60/90/120 min:")
    for name, series in rows.items():
        print(f"  {name:12s} " + " ".join(f"{v:5.2f}" for v in series))

    for name, series in rows.items():
        # monotone growth, bounded by ~5% after two hours (paper: <=4%)
        assert series == sorted(series), name
        assert series[-1] < 5.0, name
        assert series[-1] > 0.5, name

    # smaller batteries pay proportionally more
    assert rows["pixel2"][-1] > rows["oneplus8pro"][-1]


def test_fig26_sampling_rate_tradeoff(benchmark):
    spec = phone("oneplus8pro")
    model = PowerModel(battery_mwh=spec.battery_mwh)

    def sweep():
        return {
            interval: model.extra_consumption_percent(
                7200.0, interval_s=interval, gpu_sample_power_mw=spec.gpu.sample_power_mw
            )
            for interval in (0.004, 0.008, 0.012)
        }

    rows = run_once(benchmark, sweep)
    print("\npower vs sampling interval (2h):", {k: round(v, 2) for k, v in rows.items()})
    assert rows[0.004] > rows[0.008] > rows[0.012]
