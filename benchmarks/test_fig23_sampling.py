"""Fig 23: impact of the GPU PC reading interval.

The paper recommends reading at most every 8 ms at 60 Hz and at most every
4 ms at 120 Hz: at 120 Hz consecutive frames are only 8.3 ms apart and
merge into a single read at slower sampling, costing ~20 % of text
accuracy at 12 ms while per-key accuracy stays >95 %.

These runs use the published Algorithm 1 (``recover_collisions=False``):
our collision-recovery extensions largely remove the interval sensitivity
the paper measures (see the engine-ablation bench and EXPERIMENTS.md).
The offline model is retrained at each interval, as the real attack's
would be.
"""

import numpy as np

from conftest import run_once, scaled
from repro.analysis.experiments import run_credential_batch
from repro.android.os_config import default_config
from repro.workloads.credentials import credential_batch


def _sweep(chase, refresh_hz, intervals, n):
    config = default_config(refresh_rate_hz=refresh_hz)
    texts = credential_batch(np.random.default_rng(23), n)
    rows = {}
    for interval_ms in intervals:
        rows[interval_ms] = run_credential_batch(
            config,
            chase,
            interval_s=interval_ms / 1000.0,
            seed=2300,
            texts=texts,
            recover_collisions=False,
        )
    return rows


def test_fig23_sampling_interval_120hz(benchmark, chase):
    rows = run_once(benchmark, lambda: _sweep(chase, 120, (4, 8, 12), scaled(16)))
    print("\nFig 23 @120Hz — accuracy vs sampling interval (Algorithm 1):")
    for ms, batch in rows.items():
        print(f"  {ms:2d} ms: text={batch.text_accuracy:.3f} key={batch.key_accuracy:.3f}")

    # the paper's recommendation: at 120 Hz the interval must be ~4 ms
    assert rows[4].text_accuracy > rows[8].text_accuracy > rows[12].text_accuracy
    assert rows[4].text_accuracy - rows[12].text_accuracy > 0.15, (
        "12 ms at 120 Hz must cost a large share of text accuracy"
    )
    # per-key accuracy degrades far more slowly (paper: retained >95%)
    assert rows[12].key_accuracy > 0.8


def test_fig23_sampling_interval_60hz(benchmark, chase):
    rows = run_once(benchmark, lambda: _sweep(chase, 60, (4, 8, 12), scaled(16)))
    print("\nFig 23 @60Hz — accuracy vs sampling interval (Algorithm 1):")
    for ms, batch in rows.items():
        print(f"  {ms:2d} ms: text={batch.text_accuracy:.3f} key={batch.key_accuracy:.3f}")

    # at 60 Hz the recommended 8 ms works well; our split-read model makes
    # 12 ms *no worse* at this refresh rate (frames are 16.7 ms apart), a
    # divergence from the paper's 60 Hz curve recorded in EXPERIMENTS.md
    assert rows[8].text_accuracy > 0.4
    assert rows[8].key_accuracy > 0.92
    for ms, batch in rows.items():
        assert batch.key_accuracy > 0.9, ms
