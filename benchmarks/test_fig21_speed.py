"""Fig 21: the impact of user input speed.

Section 7.2 splits collected intervals into fast (<0.24 s), medium
(0.24-0.4 s) and slow (>0.4 s) tiers.  The paper finds per-key accuracy
roughly constant while *text* accuracy drops toward ~60 % for slow typing
(more idle time per key press means more chances for ambient changes to
corrupt a read), with mean errors still <1.3 per input.
"""

import numpy as np

import zlib

from conftest import run_once, scaled
from repro.analysis.experiments import run_credential_batch

TIERS = ("fast", "medium", "slow")


def _sweep(config, chase, n):
    rows = {}
    for tier in TIERS:
        rows[tier] = run_credential_batch(
            config, chase, n_texts=n, speed_tier=tier, seed=2100 + zlib.crc32(str(tier).encode()) % 83
        )
    rows["overall"] = run_credential_batch(config, chase, n_texts=n, seed=2150)
    return rows


def test_fig21_speed_impact(benchmark, config, chase):
    rows = run_once(benchmark, lambda: _sweep(config, chase, scaled(20)))

    print("\nFig 21 — impact of input speed (paper: slow drops to ~60% text):")
    print(f"{'tier':>8s} {'text acc':>9s} {'key acc':>9s} {'errors':>7s}")
    for tier, batch in rows.items():
        print(
            f"{tier:>8s} {batch.text_accuracy:9.3f} {batch.key_accuracy:9.3f} "
            f"{batch.report.mean_errors_per_trace:7.2f}"
        )

    # per-key accuracy stays roughly constant across speeds (Fig 21a)
    key_accs = [rows[t].key_accuracy for t in TIERS]
    assert max(key_accs) - min(key_accs) < 0.05
    assert min(key_accs) > 0.93

    # text accuracy decreases as typing slows (Fig 21a)
    assert rows["slow"].text_accuracy <= rows["fast"].text_accuracy
    assert rows["slow"].text_accuracy > 0.35, "slow typing must not collapse"

    # errors remain correctable with a few guesses (Fig 21b: <1.3)
    for tier in TIERS:
        assert rows[tier].report.mean_errors_per_trace < 1.5, tier


def test_fig21_group_accuracy_by_speed(benchmark, config, chase):
    rows = run_once(benchmark, lambda: _sweep(config, chase, scaled(15)))
    print("\nFig 21(c) — group accuracy per speed tier:")
    for tier in TIERS:
        groups = rows[tier].report.group_accuracy()
        line = " ".join(f"{g}={groups.get(g, 0):.3f}" for g in ("lower", "upper", "number", "symbol"))
        print(f"  {tier:>7s}: {line}")
        for acc in groups.values():
            assert acc > 0.85
