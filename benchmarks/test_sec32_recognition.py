"""Section 3.2: device/configuration recognition accuracy.

"These readings will be first used to recognize the current device model
and configuration, and then applied to the corresponding classification
model."  The bench preloads models for a diverse fleet and measures how
often the attack picks the right one from the victim's first PC changes
(chip-id narrowing via KGSL_PROP_DEVICE_INFO plus signature matching).
"""

import numpy as np

from conftest import run_once, scaled
from repro.analysis.experiments import cached_model
from repro.android.apps import AMEX, CHASE
from repro.android.keyboard import KEYBOARDS
from repro.android.os_config import DeviceConfig, default_config, phone
from repro.core.model_store import ModelStore
from repro.core.pipeline import EavesdropAttack, simulate_credential_entry
from repro.workloads.credentials import credential_batch

FLEET = [
    (DeviceConfig(phone=phone("oneplus8pro")), CHASE),
    (DeviceConfig(phone=phone("oneplus8pro"), keyboard=KEYBOARDS["sogou"]), CHASE),
    (DeviceConfig(phone=phone("pixel2")), CHASE),
    (DeviceConfig(phone=phone("lg_v30")), CHASE),
    (DeviceConfig(phone=phone("oneplus9")), CHASE),
    (DeviceConfig(phone=phone("oneplus8pro")), AMEX),
]


def test_sec32_device_recognition_accuracy(benchmark):
    def run():
        store = ModelStore()
        for config, target in FLEET:
            store.add(cached_model(config, target))
        attack = EavesdropAttack(store, recognize_device=True)
        rng = np.random.default_rng(32)
        texts = credential_batch(rng, scaled(3) * len(FLEET))
        correct = total = exact = 0
        for i, text in enumerate(texts):
            config, target = FLEET[i % len(FLEET)]
            trace = simulate_credential_entry(config, target, text, seed=3200 + i)
            result = attack.run_on_trace(trace, seed=3300 + i)
            expected = f"{config.config_key()}/{target.name}"
            correct += result.model_key == expected
            exact += result.text == text
            total += 1
        return correct, exact, total

    correct, exact, total = run_once(benchmark, run)
    print(
        f"\nSection 3.2 — device recognition: {correct}/{total} configurations "
        f"identified; {exact}/{total} credentials stolen verbatim with the fleet store"
    )
    assert correct / total > 0.9, "recognition must almost always pick the right model"
    assert exact / total > 0.5
