"""Fig 16: durations and intervals of key presses from 5 volunteers.

Regenerates the Fig 16 scatter's marginals: durations clustered around
60-120 ms, intervals spread from ~0.1 s to ~1 s, with per-volunteer
heterogeneity; and Section 7.2's three equal-ish speed tiers.
"""

import numpy as np

from conftest import run_once, scaled
from repro.workloads.typing_model import (
    FAST_MAX_INTERVAL_S,
    MEDIUM_MAX_INTERVAL_S,
    collect_volunteer_samples,
    split_by_speed,
)


def test_fig16_volunteer_distributions(benchmark):
    rng = np.random.default_rng(16)
    data = run_once(
        benchmark, lambda: collect_volunteer_samples(rng, presses_per_volunteer=scaled(600))
    )
    print("\nFig 16 — per-volunteer typing statistics:")
    medians = {}
    for name, stats in data.items():
        duration_med = float(np.median(stats["durations"]))
        interval_med = float(np.median(stats["intervals"]))
        medians[name] = interval_med
        print(
            f"  {name}: duration median={duration_med * 1000:5.1f} ms, "
            f"interval median={interval_med:0.3f} s"
        )
        assert 0.05 < duration_med < 0.15
        assert 0.1 < interval_med < 0.6

    # the volunteers are visibly heterogeneous, as in the figure
    assert max(medians.values()) / min(medians.values()) > 1.5


def test_fig16_speed_tiers_all_populated(benchmark):
    rng = np.random.default_rng(17)
    data = run_once(
        benchmark, lambda: collect_volunteer_samples(rng, presses_per_volunteer=scaled(600))
    )
    pooled = np.concatenate([stats["intervals"] for stats in data.values()])
    tiers = split_by_speed(pooled)
    shares = {name: len(vals) / len(pooled) for name, vals in tiers.items()}
    print(
        f"\nSection 7.2 speed tiers (boundaries {FAST_MAX_INTERVAL_S}s/{MEDIUM_MAX_INTERVAL_S}s): "
        + ", ".join(f"{k}={v * 100:.0f}%" for k, v in shares.items())
    )
    # the paper splits into three same-size parts; our pooled distribution
    # must make each tier substantial
    for name, share in shares.items():
        assert share > 0.15, name
