"""Information leak of the side channel, in bits.

A complementary view of the headline accuracy: even when a credential is
not inferred verbatim, the counters collapse its search space.  This
bench builds the empirical confusion matrix over a credential batch and
reports prior vs posterior entropy with bootstrap intervals on accuracy.
"""

import numpy as np

from conftest import run_once, scaled
from repro.analysis.confusion import ConfusionMatrix
from repro.analysis.entropy import leak_report
from repro.analysis.experiments import single_model_attack
from repro.analysis.stats import accuracy_interval
from repro.core.pipeline import simulate_credential_entry
from repro.workloads.credentials import PASSWORD_POOL, credential_batch


def test_entropy_leak_of_the_channel(benchmark, config, chase):
    n = scaled(25)

    def run():
        attack = single_model_attack(config, chase)
        matrix = ConfusionMatrix()
        rng = np.random.default_rng(90)
        exact = 0
        for i, text in enumerate(credential_batch(rng, n, length=12)):
            trace = simulate_credential_entry(config, chase, text, seed=9000 + i)
            result = attack.run_on_trace(trace, seed=9100 + i)
            matrix.record(text, result.text)
            exact += text == result.text
        return matrix, exact

    matrix, exact = run_once(benchmark, run)
    report = leak_report(matrix, length=12)
    interval = accuracy_interval(exact, scaled(25))

    print(
        f"\nentropy leak (12-char credential over {len(PASSWORD_POOL)} symbols):\n"
        f"  prior entropy      : {report.prior_bits:.1f} bits\n"
        f"  posterior entropy  : {report.posterior_bits:.1f} bits\n"
        f"  leaked             : {report.leaked_bits:.1f} bits "
        f"({report.leak_fraction:.1%} of the credential)\n"
        f"  search-space shrink: 2^{np.log2(report.search_space_reduction):.0f}\n"
        f"  exact-inference acc: {interval}"
    )

    # a 12-char password carries ~76 bits; the channel must take almost
    # all of them (the paper's >80% verbatim recovery implies this)
    assert report.leak_fraction > 0.9
    assert report.posterior_bits < 8.0, "residual uncertainty must be guessable"

    # the most confused pairs are the faint-glyph symbols
    pairs = matrix.most_confused_pairs(top=3)
    print(f"  top confusions     : {pairs}")
